// Package core implements the HB+-tree (Section 5), the paper's primary
// contribution: a B+-tree whose inner-node segment (I-segment) is
// mirrored in GPU device memory while the leaf segment (L-segment)
// resides only in host memory, so that index search jointly exploits the
// memory bandwidth and compute resources of both processors.
//
// Searches run as the four-step heterogeneous algorithm of Section 5.4 —
// (1) copy a query bucket to the GPU, (2) GPU traversal of all inner
// levels, (3) copy the intermediate results (leaf references) back,
// (4) CPU search of the leaf nodes — composed per bucket on a virtual
// timeline with the paper's three scheduling strategies: sequential,
// CPU-GPU pipelined (Figure 5), and pipelined with double buffering
// (Figure 6). A load-balancing mode (Section 5.5) lets the CPU pre-walk
// the top D levels with the fractional split R found by the discovery
// algorithm (Algorithm 1). Batch updates follow Section 5.6: full
// rebuild plus I-segment transfer for the implicit variant, synchronized
// or asynchronous I-segment maintenance for the regular variant.
//
// Everything executes functionally — the GPU simulator traverses a real
// device-resident replica and results are bit-exact with the host tree —
// while throughput and latency are produced by the calibrated cost model
// in model.go on the virtual clock.
//
// # Concurrency
//
// A Tree's read-only operations — Lookup, LookupBatch, LookupBatchCPU,
// RangeQuery, RangeQueryBatch, Seek, Describe, Stats and the other
// accessors — are safe to call from multiple goroutines concurrently
// with one another: each LookupBatch composes its own vclock.Timeline
// and its own device staging buffers, device counters are atomic, and
// the recorded trace (SetTrace/LastTrace) is mutex-guarded. Mutating
// operations — Update, Rebuild, UpdateGPUAssisted, MixedBatch, Close,
// and the configuration setters SetTrace, SetBalance and
// SetLeafMissOverride — require exclusive access: no other call may
// overlap them. internal/serve wraps a Tree behind exactly this
// reader/writer contract for serving deployments.
package core

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"hbtree/internal/cpubtree"
	"hbtree/internal/gpusim"
	"hbtree/internal/keys"
	"hbtree/internal/model"
	"hbtree/internal/platform"
	"hbtree/internal/simd"
	"hbtree/internal/vclock"
)

// Variant selects the tree organisation (Section 3).
type Variant int

// The two HB+-tree organisations.
const (
	Implicit Variant = iota // pointer-free breadth-first array; bulk-rebuild updates
	Regular                 // pointered nodes; incremental batch updates
)

// String names the variant.
func (v Variant) String() string {
	if v == Regular {
		return "regular"
	}
	return "implicit"
}

// Strategy selects the bucket-handling technique (Section 6.3).
type Strategy int

// Bucket-handling strategies of Figure 10. The zero value is the
// paper's final configuration (pipelining with double buffering).
const (
	DoubleBuffered Strategy = iota // pipelining + double buffering (Figure 6)
	Sequential                     // one bucket at a time, no overlap
	Pipelined                      // CPU-GPU pipelining (Figure 5)
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Sequential:
		return "sequential"
	case Pipelined:
		return "pipelined"
	case DoubleBuffered:
		return "double-buffered"
	}
	return "unknown"
}

// DefaultBucketSize is the bucket size M the paper selects after the
// sweep of Figure 11.
const DefaultBucketSize = 16 * 1024

// Layout selects the implicit I-segment's per-level node geometry.
type Layout int

const (
	// LayoutUniform is the paper's geometry: every inner node is one
	// cache line wide at every level.
	LayoutUniform Layout = iota

	// LayoutTuned lets the cost model widen root-side levels into
	// multi-line nodes where a shared-descent batch probes few distinct
	// nodes, shortening the tree without adding probe-weighted lines.
	LayoutTuned
)

func (l Layout) String() string {
	if l == LayoutTuned {
		return "tuned"
	}
	return "uniform"
}

// Options configures an HB+-tree.
type Options struct {
	// Machine is the platform model; the zero value selects M1.
	Machine platform.Machine

	// Variant selects implicit or regular organisation.
	Variant Variant

	// NodeSearch is the CPU in-node search kernel.
	NodeSearch simd.Algorithm

	// BucketSize is M, the number of queries per bucket; zero selects
	// DefaultBucketSize (16K).
	BucketSize int

	// Strategy is the bucket-handling technique; the default
	// (DoubleBuffered) is the paper's final configuration.
	Strategy Strategy

	// LoadBalance enables the load-balanced mode of Section 5.5, with D
	// and R chosen by the discovery algorithm on first use (or set
	// explicitly via SetBalance). Load balancing uses three concurrent
	// buckets instead of two (Section 5.5).
	LoadBalance bool

	// Threads overrides the CPU worker count; zero selects the machine
	// model's hardware threads for the cost model and GOMAXPROCS for
	// functional execution.
	Threads int

	// PipelineDepth is the CPU software-pipeline length (16 default).
	PipelineDepth int

	// LeafFill is the regular tree's bulk-load fill factor.
	LeafFill float64

	// Layout selects the implicit I-segment's node geometry.
	// LayoutUniform (the zero value) keeps the paper's one-line nodes at
	// every level; LayoutTuned asks internal/model to cost candidate
	// per-level widths at build and rebuild time and widens the root-side
	// levels when that strictly reduces the expected probe-weighted line
	// count of a shared-descent batch. The regular variant ignores it.
	Layout Layout

	// LayoutBatch is the coalesced batch size the layout tuner optimises
	// for (the serving layer's flush window); zero selects BucketSize.
	// Only read when Layout == LayoutTuned.
	LayoutBatch int

	// Device, when non-nil, places this tree's I-segment replica on an
	// existing simulated GPU instead of a private one, so several
	// indexes share (and compete for) one card's memory — the
	// deployment the paper envisions for a database with many indexes.
	Device *gpusim.Device
}

func (o *Options) fillDefaults() {
	if o.Machine.Name == "" {
		o.Machine = platform.M1()
	}
	if o.BucketSize <= 0 {
		o.BucketSize = DefaultBucketSize
	}
	if o.PipelineDepth == 0 {
		o.PipelineDepth = cpubtree.DefaultPipelineDepth
	}
	if o.Threads <= 0 {
		o.Threads = o.Machine.CPU.Threads
	}
}

// validate rejects configurations the executors cannot honour.
func (o *Options) validate() error {
	if o.Variant != Implicit && o.Variant != Regular {
		return fmt.Errorf("core: unknown variant %d", o.Variant)
	}
	switch o.Strategy {
	case Sequential, Pipelined, DoubleBuffered:
	default:
		return fmt.Errorf("core: unknown strategy %d", o.Strategy)
	}
	if o.BucketSize < 64 {
		return fmt.Errorf("core: bucket size %d below the minimum of 64", o.BucketSize)
	}
	if o.LeafFill < 0 || o.LeafFill > 1 {
		return fmt.Errorf("core: leaf fill %v outside [0, 1]", o.LeafFill)
	}
	return nil
}

// BuildStats reports the construction cost breakdown (the phases of
// Figure 15: L-segment build, I-segment build, I-segment transfer).
type BuildStats struct {
	LSegBuild vclock.Duration
	ISegBuild vclock.Duration
	ISegXfer  vclock.Duration
	ISegBytes int64
	LSegBytes int64
}

// Total returns the full construction time.
func (b BuildStats) Total() vclock.Duration { return b.LSegBuild + b.ISegBuild + b.ISegXfer }

// devShare reference-counts a group of trees sharing one set of
// device-resident I-segment buffers. ApplyDelta forks join their
// parent's group instead of re-uploading an identical image; the
// buffers are freed when the last member releases them.
type devShare struct {
	refs atomic.Int32
}

// Tree is an HB+-tree over K (uint64 or uint32 keys).
type Tree[K keys.Key] struct {
	opt Options
	dev *gpusim.Device

	impl *cpubtree.ImplicitTree[K] // set when opt.Variant == Implicit
	reg  *cpubtree.RegularTree[K]  // set when opt.Variant == Regular

	// Device-resident I-segment replica. A delta fork (ApplyDelta)
	// shares these buffers with its ancestors — the inner pools are
	// byte-identical across an in-place epoch chain, so re-uploading
	// them would be pure waste — and bufShare refcounts the sharing
	// group: the buffers are freed when the last tree drops its
	// reference, and a remirror detaches into a fresh group.
	isegBuf  *gpusim.Buffer[K] // implicit variant
	upperBuf *gpusim.Buffer[K] // regular variant
	lastBuf  *gpusim.Buffer[K]
	bufShare *devShare

	implDesc gpusim.ImplicitDesc
	regDesc  gpusim.RegularDesc

	// replicaStale marks a device replica that could not be
	// re-synchronised after a faulted update: the host tree mutated but
	// the device image did not follow. While set, every GPU-path lookup
	// fails with fault.ErrReplicaStale (stale inner nodes would
	// misroute queries); a successful re-mirror clears it. Written only
	// under the tree's single-writer contract, but atomic because the
	// serving layer's background repair clears it on a *published* tree
	// while CPU-path readers are live: a reader that loads false is
	// ordered after the repaired buffers were installed, and no GPU
	// reader can be in flight during the repair (the flag was true for
	// the tree's whole published life until that store).
	replicaStale atomic.Bool

	// Load-balance parameters (Section 5.5); valid when balanced.
	// balanceMu serialises the first-use discovery so concurrent
	// balanced lookups never race on the parameters.
	balanceMu sync.Mutex
	balanced  bool
	lbD       int
	lbR       float64

	// leafMissOverride, when in [0,1], replaces the analytic leaf-stage
	// miss fraction (see SetLeafMissOverride).
	leafMissOverride float64

	// traceOn records the next LookupBatch's timeline for Gantt
	// rendering (see SetTrace / LastTrace). The recorded timeline is
	// guarded so concurrent traced lookups keep isolated timelines and
	// only the publication of the last one is serialised.
	traceOn   atomic.Bool
	traceMu   sync.Mutex
	lastTrace *vclock.Timeline

	buildStats BuildStats

	// scratch pools per-batch search working state (device staging
	// buffers, host staging slices, timeline) so the steady-state
	// lookup path allocates nothing. See scratch.go.
	scratch chan *searchScratch[K]
}

// Build constructs an HB+-tree from sorted, distinct pairs and mirrors
// its I-segment into simulated GPU memory. It fails with
// gpusim.ErrOutOfMemory (wrapped) when the I-segment exceeds the card's
// capacity — the constraint that rules out whole-tree GPU residency and
// motivates the hybrid layout.
func Build[K keys.Key](pairs []keys.Pair[K], opt Options) (*Tree[K], error) {
	opt.fillDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	dev := opt.Device
	if dev == nil {
		dev = gpusim.New(opt.Machine.GPU)
	}
	t := &Tree[K]{opt: opt, dev: dev, leafMissOverride: -1,
		scratch: make(chan *searchScratch[K], scratchPoolCap)}

	cfg := cpubtree.Config{
		NodeSearch:    opt.NodeSearch,
		PipelineDepth: opt.PipelineDepth,
		LeafFill:      opt.LeafFill,
	}
	var err error
	switch opt.Variant {
	case Implicit:
		// The HB+ I-segment reduces the fanout to the keys-per-line
		// count and pins the last key to MAX so one warp team covers
		// both data access and node search (Section 5.2).
		cfg.Fanout = keys.PerLine[K]()
		cfg.RootWidths = tunedWidths[K](opt, len(pairs))
		t.impl, err = cpubtree.BuildImplicit(pairs, cfg)
	case Regular:
		t.reg, err = cpubtree.BuildRegular(pairs, cfg)
	default:
		return nil, fmt.Errorf("core: unknown variant %d", opt.Variant)
	}
	if err != nil {
		return nil, err
	}
	t.buildStats.LSegBuild, t.buildStats.ISegBuild = t.modelBuildCost()
	if err := t.mirrorISegment(); err != nil {
		return nil, err
	}
	return t, nil
}

// tunedWidths derives the implicit tree's RootWidths policy from the
// layout option: nil (uniform) unless LayoutTuned is selected, in which
// case the cost model picks the per-level widths that minimise the
// expected probe-weighted line count of a shared-descent batch of
// LayoutBatch (default BucketSize) queries.
func tunedWidths[K keys.Key](opt Options, numPairs int) []int {
	if opt.Layout != LayoutTuned {
		return nil
	}
	kpn := keys.PerLine[K]()
	pairsLine := kpn / 2
	numLeaves := (numPairs + pairsLine - 1) / pairsLine
	batch := opt.LayoutBatch
	if batch <= 0 {
		batch = opt.BucketSize
	}
	return model.TuneWidths(numLeaves, kpn, kpn, batch)
}

// mirrorISegment (re)creates the device-resident replica of the
// I-segment, recording the transfer cost.
func (t *Tree[K]) mirrorISegment() error {
	t.releaseDeviceBufs()
	sz := int64(keys.Size[K]())
	switch t.opt.Variant {
	case Implicit:
		inner, levelOff, kpn, fanout := t.impl.InnerArray()
		buf, err := gpusim.Malloc[K](t.dev, len(inner))
		if err != nil {
			return fmt.Errorf("core: I-segment does not fit in GPU memory: %w", err)
		}
		d, err := buf.CopyFromHost(inner)
		if err != nil {
			buf.Free()
			return err
		}
		t.isegBuf = buf
		off32 := make([]int32, len(levelOff))
		for i, o := range levelOff {
			off32[i] = int32(o)
		}
		// The descriptor always carries the materialised per-level layout
		// table so kernels never rebuild it on the serving path; for a
		// uniform tree the table is exactly the scalar-field geometry and
		// the kernels behave byte-identically to the uniform arithmetic.
		geom := t.impl.LevelGeometry()
		levels := make([]gpusim.LevelGeom, len(geom))
		for i, g := range geom {
			levels[i] = gpusim.LevelGeom{
				Off:    int32(g.Slot),
				Kpn:    int32(g.Kpn),
				Fanout: int32(g.Fanout),
				Lines:  int32(g.Kpn / kpn),
			}
		}
		t.implDesc = gpusim.ImplicitDesc{
			LevelOff:  off32,
			Kpn:       kpn,
			Fanout:    fanout,
			Height:    t.impl.Height(),
			NumLeaves: t.impl.NumLeafLines(),
			Levels:    levels,
		}
		t.buildStats.ISegXfer = d
		t.buildStats.ISegBytes = int64(len(inner)) * sz
		t.buildStats.LSegBytes = t.impl.Stats().LeafBytes
	case Regular:
		upper, last, root, height, nodeSlots, kpl := t.reg.InnerArrays()
		ub, err := gpusim.Malloc[K](t.dev, len(upper))
		if err != nil {
			return fmt.Errorf("core: I-segment (upper) does not fit in GPU memory: %w", err)
		}
		lb, err := gpusim.Malloc[K](t.dev, len(last))
		if err != nil {
			ub.Free()
			return fmt.Errorf("core: I-segment (last) does not fit in GPU memory: %w", err)
		}
		d1, err := ub.CopyFromHost(upper)
		if err != nil {
			ub.Free()
			lb.Free()
			return err
		}
		d2, err := lb.CopyFromHost(last)
		if err != nil {
			ub.Free()
			lb.Free()
			return err
		}
		t.upperBuf, t.lastBuf = ub, lb
		t.regDesc = gpusim.RegularDesc{
			Root:        root,
			RootInUpper: height >= 2,
			Height:      height,
			NodeSlots:   nodeSlots,
			Kpl:         kpl,
		}
		t.buildStats.ISegXfer = d1 + d2
		t.buildStats.ISegBytes = (int64(len(upper)) + int64(len(last))) * sz
		t.buildStats.LSegBytes = t.reg.Stats().LeafBytes
	}
	sh := &devShare{}
	sh.refs.Store(1)
	t.bufShare = sh
	t.replicaStale.Store(false) // a full mirror re-establishes consistency
	return nil
}

// releaseDeviceBufs drops this tree's reference to its device-buffer
// sharing group, freeing the buffers when it was the last holder. The
// local pointers are always cleared, so the call is idempotent and a
// later mirror starts from a clean slate.
func (t *Tree[K]) releaseDeviceBufs() {
	sh := t.bufShare
	t.bufShare = nil
	if sh != nil && sh.refs.Add(-1) > 0 {
		// Other epoch-chain members still use the buffers.
		t.isegBuf, t.upperBuf, t.lastBuf = nil, nil, nil
		return
	}
	if t.isegBuf != nil {
		t.isegBuf.Free()
		t.isegBuf = nil
	}
	if t.upperBuf != nil {
		t.upperBuf.Free()
		t.upperBuf = nil
	}
	if t.lastBuf != nil {
		t.lastBuf.Free()
		t.lastBuf = nil
	}
}

// ReplicaStale reports whether the device replica is known to lag the
// host tree after a faulted synchronisation (see fault.ErrReplicaStale).
func (t *Tree[K]) ReplicaStale() bool { return t.replicaStale.Load() }

// remirror re-creates the device replica after a host-side mutation.
// Unlike the construction-time mirror, a failure here leaves the host
// tree ahead of the device image, so the tree is marked replica-stale:
// the batch itself succeeded in host memory (no acked write is lost)
// and GPU-path lookups fail typed until a later mirror heals the
// replica. The original transfer/allocation error is returned so the
// caller can classify it (fault.Is).
func (t *Tree[K]) remirror() error {
	if err := t.mirrorISegment(); err != nil {
		t.replicaStale.Store(true)
		return err
	}
	return nil
}

// Resync retries the full I-segment mirror, clearing the stale flag on
// success — the recovery path the serving layer drives after faulted
// updates. It is a no-op when the replica is already consistent. Must
// be called under the tree's single-writer contract.
func (t *Tree[K]) Resync() error {
	if !t.replicaStale.Load() {
		return nil
	}
	return t.remirror()
}

// modelBuildCost returns the virtual construction durations of the L-
// and I-segments (per-pair CPU work plus the bytes written at memory
// bandwidth).
func (t *Tree[K]) modelBuildCost() (lseg, iseg vclock.Duration) {
	cpu := t.opt.Machine.CPU
	var st cpubtree.Stats
	if t.impl != nil {
		st = t.impl.Stats()
	} else {
		st = t.reg.Stats()
	}
	lseg = vclock.Duration(st.NumPairs)*cpu.RebuildPerPair +
		vclock.Duration(float64(2*st.LeafBytes)/cpu.MemBWBytes*1e9)
	iseg = vclock.Duration(float64(2*st.InnerBytes+st.LeafBytes/4) / cpu.MemBWBytes * 1e9)
	return lseg, iseg
}

// Close releases the device-resident buffers, including any pooled
// search scratch. Close is idempotent.
func (t *Tree[K]) Close() {
	t.drainScratch()
	t.releaseDeviceBufs()
}

// Options returns the tree's configuration.
func (t *Tree[K]) Options() Options { return t.opt }

// SetTrace makes subsequent LookupBatch calls record their virtual
// timeline; LastTrace returns it for Gantt rendering — the reproduction
// of the paper's pipelining diagrams (Figures 5 and 6).
func (t *Tree[K]) SetTrace(on bool) { t.traceOn.Store(on) }

// LastTrace returns the most recent traced timeline, or nil. When
// traced lookups run concurrently, each records its own timeline and
// the last publisher wins.
func (t *Tree[K]) LastTrace() *vclock.Timeline {
	t.traceMu.Lock()
	defer t.traceMu.Unlock()
	return t.lastTrace
}

// setLastTrace publishes a lookup's recorded timeline.
func (t *Tree[K]) setLastTrace(tl *vclock.Timeline) {
	t.traceMu.Lock()
	t.lastTrace = tl
	t.traceMu.Unlock()
}

// Device exposes the simulated GPU (counters, memory accounting).
func (t *Tree[K]) Device() *gpusim.Device { return t.dev }

// BuildStats returns the construction cost breakdown.
func (t *Tree[K]) BuildStats() BuildStats { return t.buildStats }

// Stats reports the underlying tree geometry.
func (t *Tree[K]) Stats() cpubtree.Stats {
	if t.impl != nil {
		return t.impl.Stats()
	}
	return t.reg.Stats()
}

// Height returns H, the inner-level count.
func (t *Tree[K]) Height() int {
	if t.impl != nil {
		return t.impl.Height()
	}
	return t.reg.Height()
}

// Lookup resolves a single query on the CPU path (convenience; the
// throughput path is LookupBatch). The GPU replica is not consulted.
func (t *Tree[K]) Lookup(q K) (K, bool) {
	if t.impl != nil {
		return t.impl.Lookup(q)
	}
	return t.reg.Lookup(q)
}

// RangeQuery returns up to count pairs with key >= start. Range scans
// are a CPU-side operation: after the inner traversal the leaf chain is
// walked in host memory (Section 6.4).
func (t *Tree[K]) RangeQuery(start K, count int, out []keys.Pair[K]) []keys.Pair[K] {
	if t.impl != nil {
		return t.impl.RangeQuery(start, count, out)
	}
	return t.reg.RangeQuery(start, count, out)
}

// NumPairs returns the number of stored pairs.
func (t *Tree[K]) NumPairs() int {
	if t.impl != nil {
		return t.impl.Stats().NumPairs
	}
	return t.reg.NumPairs()
}

// Implicit returns the underlying implicit tree (nil for the regular
// variant); exposed for the harness and tests.
func (t *Tree[K]) Implicit() *cpubtree.ImplicitTree[K] { return t.impl }

// Regular returns the underlying regular tree (nil for the implicit
// variant).
func (t *Tree[K]) Regular() *cpubtree.RegularTree[K] { return t.reg }

// WriteTo serialises the HB+-tree's host-resident state (both segments
// and, for the regular variant, all metadata). The GPU replica is not
// stored: Load reconstructs it by re-mirroring the I-segment, exactly as
// a restart on real hardware would.
func (t *Tree[K]) WriteTo(w io.Writer) (int64, error) {
	var kind [1]byte
	if t.opt.Variant == Regular {
		kind[0] = 2
	} else {
		kind[0] = 1
	}
	if _, err := w.Write(kind[:]); err != nil {
		return 0, err
	}
	var n int64
	var err error
	if t.impl != nil {
		n, err = t.impl.WriteTo(w)
	} else {
		n, err = t.reg.WriteTo(w)
	}
	return n + 1, err
}

// Load reads a tree serialised by WriteTo, applying opt's runtime
// configuration (machine model, bucket size, strategy), and mirrors the
// I-segment into the simulated GPU's memory.
func Load[K keys.Key](r io.Reader, opt Options) (*Tree[K], error) {
	opt.fillDefaults()
	var kind [1]byte
	if _, err := io.ReadFull(r, kind[:]); err != nil {
		return nil, fmt.Errorf("core: reading variant: %w", err)
	}
	cfg := cpubtree.Config{
		NodeSearch:    opt.NodeSearch,
		PipelineDepth: opt.PipelineDepth,
		LeafFill:      opt.LeafFill,
	}
	dev := opt.Device
	if dev == nil {
		dev = gpusim.New(opt.Machine.GPU)
	}
	t := &Tree[K]{opt: opt, dev: dev, leafMissOverride: -1,
		scratch: make(chan *searchScratch[K], scratchPoolCap)}
	switch kind[0] {
	case 1:
		opt.Variant = Implicit
		t.opt.Variant = Implicit
		impl, err := cpubtree.ReadImplicit[K](r, cfg)
		if err != nil {
			return nil, err
		}
		t.impl = impl
	case 2:
		opt.Variant = Regular
		t.opt.Variant = Regular
		reg, err := cpubtree.ReadRegular[K](r, cfg)
		if err != nil {
			return nil, err
		}
		t.reg = reg
	default:
		return nil, fmt.Errorf("core: unknown serialised variant %d", kind[0])
	}
	t.buildStats.LSegBuild, t.buildStats.ISegBuild = t.modelBuildCost()
	if err := t.mirrorISegment(); err != nil {
		return nil, err
	}
	return t, nil
}

// Seek returns a forward cursor over the stored pairs positioned at the
// first key >= start. Cursors stream in key order from the host-resident
// leaves; they are read-only and must not be used concurrently with
// updates.
func (t *Tree[K]) Seek(start K) cpubtree.Cursor[K] {
	if t.impl != nil {
		return t.impl.Seek(start)
	}
	return t.reg.Seek(start)
}

// Describe returns a human-readable report of the tree: geometry,
// segment placement, device occupancy and configuration. Tools such as
// cmd/hbserve expose it for operational visibility.
func (t *Tree[K]) Describe() string {
	st := t.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "HB+-tree (%s variant, %d-bit keys) on %s\n",
		t.opt.Variant, keys.Size[K]()*8, t.opt.Machine.Name)
	fmt.Fprintf(&b, "  pairs: %d, height: %d, lines/query: %d\n",
		st.NumPairs, st.Height, st.LinesPerQuery)
	fmt.Fprintf(&b, "  I-segment: %.2f MiB (mirrored to %s)\n",
		float64(st.InnerBytes)/(1<<20), t.opt.Machine.GPU.Name)
	fmt.Fprintf(&b, "  L-segment: %.2f MiB (host only)\n",
		float64(st.LeafBytes)/(1<<20))
	fmt.Fprintf(&b, "  device memory: %.2f / %.0f MiB used\n",
		float64(t.dev.MemUsed())/(1<<20), float64(t.opt.Machine.GPU.MemBytes)/(1<<20))
	fmt.Fprintf(&b, "  buckets: %d queries, %s strategy, node search: %s\n",
		t.opt.BucketSize, t.opt.Strategy, t.opt.NodeSearch)
	if t.impl != nil {
		fmt.Fprintf(&b, "  layout: %s, level widths: %v\n", t.opt.Layout, t.impl.LevelWidths())
	}
	if t.balanced {
		fmt.Fprintf(&b, "  load balance: D=%d R=%.2f\n", t.lbD, t.lbR)
	}
	return b.String()
}

// LevelWidths returns the implicit tree's per-level node widths in key
// slots, root first — the concrete layout the tuner (or the uniform
// default) chose. nil for the regular variant.
func (t *Tree[K]) LevelWidths() []int {
	if t.impl == nil {
		return nil
	}
	return t.impl.LevelWidths()
}

// LayoutAdvice recommends per-level root widths for this tree from an
// observed per-level probe histogram (SearchStats.LevelProbes semantics,
// accumulated across batches), screened through the machine's LLC miss
// profile. nil means the uniform layout is already the right choice.
func (t *Tree[K]) LayoutAdvice(levelProbes []int64) []int {
	if t.impl == nil {
		return nil
	}
	kpn := keys.PerLine[K]()
	return model.LayoutAdvice(levelProbes, t.impl.LevelWidths(),
		t.impl.NumLeafLines(), kpn, kpn, t.opt.Machine.CPU.LLCBytes)
}
