package core

import (
	"fmt"
	"slices"

	"hbtree/internal/cpubtree"
	"hbtree/internal/fault"
	"hbtree/internal/gpusim"
	"hbtree/internal/keys"
	"hbtree/internal/model"
	"hbtree/internal/vclock"
)

// SearchStats summarises one LookupBatch execution: the simulated
// makespan, throughput and latency, plus the average per-bucket stage
// durations T1..T4 of the Section 5.4 cost model, for inspection by the
// harness and tests.
// StatLevels bounds the per-level probe breakdown recorded in
// SearchStats.LevelProbes; tree heights never approach it.
const StatLevels = 16

type SearchStats struct {
	Queries    int
	Buckets    int
	BucketSize int

	SimTime       vclock.Duration // virtual makespan of the whole batch
	ThroughputQPS float64         // Queries / SimTime
	AvgLatency    vclock.Duration // mean bucket completion - admission

	// Latency percentiles over the per-bucket completion latencies.
	LatencyP50, LatencyP95, LatencyP99 vclock.Duration

	T1, T2, T3, T4 vclock.Duration // average per-bucket stage durations

	// Shared-descent accounting, filled by LookupBatchSorted (zero on
	// the unsorted path). NodeProbes is the number of device-memory
	// transactions the kernels actually issued; ProbesSaved is how many
	// the per-query descent would have issued on top of that;
	// LevelProbes breaks NodeProbes down by inner level (root first).
	// DedupFolded counts duplicate keys folded out before the descent,
	// and LeafLines the distinct leaf lines the CPU stage touched.
	Sorted      bool
	NodeProbes  int64
	ProbesSaved int64
	DedupFolded int
	LeafLines   int
	LevelProbes [StatLevels]int64
}

// setLatencies fills the average and percentile latency fields from the
// per-bucket completion latencies. lats is sorted in place (every
// caller owns its slice).
func (s *SearchStats) setLatencies(lats []vclock.Duration) {
	if len(lats) == 0 {
		return
	}
	var sum vclock.Duration
	for _, l := range lats {
		sum += l
	}
	s.AvgLatency = sum / vclock.Duration(len(lats))
	slices.Sort(lats)
	pick := func(q float64) vclock.Duration {
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	s.LatencyP50 = pick(0.50)
	s.LatencyP95 = pick(0.95)
	s.LatencyP99 = pick(0.99)
}

func (s *SearchStats) finalize(tl *vclock.Timeline) {
	s.SimTime = tl.Now()
	if s.SimTime > 0 {
		s.ThroughputQPS = float64(s.Queries) / s.SimTime.Seconds()
	}
}

// LookupBatch resolves the queries with the heterogeneous CPU-GPU search
// of Section 5.4: queries are split into buckets of M, each bucket flows
// through H2D copy -> GPU inner traversal -> D2H copy -> CPU leaf
// search, and buckets are scheduled according to the configured strategy
// (sequential, pipelined, double-buffered) — or the load-balanced
// variant when enabled. Results are exact (computed on the device
// replica and host leaves); timing is virtual.
func (t *Tree[K]) LookupBatch(queries []K) (values []K, found []bool, stats SearchStats, err error) {
	if t.opt.LoadBalance {
		return t.lookupBatchBalanced(queries)
	}
	values = make([]K, len(queries))
	found = make([]bool, len(queries))
	stats, err = t.lookupBatchPlainInto(queries, values, found)
	if err != nil {
		return nil, nil, stats, err
	}
	return values, found, stats, nil
}

// LookupBatchInto is the allocation-free form of LookupBatch: results
// are written into the caller-provided slices, which must hold at least
// len(queries) elements. On the plain (non-load-balanced) path the
// steady state performs no heap allocation — device staging buffers,
// host staging slices and the virtual timeline come from the tree's
// scratch pool. The load-balanced path runs the Section 5.5 executor
// (which allocates) and copies its results into the provided slices.
func (t *Tree[K]) LookupBatchInto(queries []K, values []K, found []bool) (SearchStats, error) {
	n := len(queries)
	if len(values) < n || len(found) < n {
		return SearchStats{}, fmt.Errorf("core: LookupBatchInto: result slices hold %d/%d elements, need %d",
			len(values), len(found), n)
	}
	if t.opt.LoadBalance {
		v, f, stats, err := t.lookupBatchBalanced(queries)
		if err != nil {
			return stats, err
		}
		copy(values, v)
		copy(found, f)
		return stats, nil
	}
	return t.lookupBatchPlainInto(queries[:n:n], values[:n], found[:n])
}

func (t *Tree[K]) lookupBatchPlainInto(queries []K, values []K, found []bool) (stats SearchStats, err error) {
	n := len(queries)
	if n == 0 {
		return stats, nil
	}
	if t.replicaStale.Load() {
		return stats, fault.ErrReplicaStale
	}
	m := t.opt.BucketSize
	stats.BucketSize = m
	stats.Queries = n

	// Per-batch working state comes from the tree's pool; the device
	// staging buffers are functionally reused across buckets and the
	// timeline's buffer-dependency edges model their reuse.
	sc, err := t.acquireScratch()
	if err != nil {
		return stats, err
	}
	defer t.releaseScratch(sc)

	nbuf := t.numBuffers()
	tl := sc.tl
	tl.Reset()
	if t.traceOn.Load() {
		// A traced batch records onto a fresh timeline so the published
		// trace is not clobbered when the pooled timeline is reused.
		tl = vclock.NewTimeline()
		tl.SetTrace(true)
		t.setLastTrace(tl)
	}
	var sumT1, sumT2, sumT3, sumT4 vclock.Duration
	lats := sc.lats[:0]

	buckets := 0
	for start := 0; start < n; start += m {
		end := start + m
		if end > n {
			end = n
		}
		bq := queries[start:end]
		bn := len(bq)
		stream := buckets
		if t.opt.Strategy == Sequential {
			stream = 0 // one stream: no overlap at all
		} else if idx := buckets - nbuf; idx >= 0 {
			// The staging buffer is reused once its previous bucket's
			// intermediate results have left the device.
			tl.AdvanceStream(stream, sc.d2h[idx%scratchRing])
		}

		// Step 1: transfer the bucket to GPU memory.
		d1, err := t.copyQueriesToDevice(sc.qbuf, bq)
		if err != nil {
			return stats, err
		}
		h2dStart, _ := tl.Schedule(stream, vclock.ResPCIeH2D, "H2D", d1)

		// Step 2: GPU traversal of all inner levels (functional kernel
		// on the device replica).
		d2, err := t.runKernel(sc.qbuf, sc.rbuf, bn)
		if err != nil {
			return stats, err
		}
		tl.Schedule(stream, vclock.ResGPU, "kernel", d2)

		// Step 3: transfer intermediate results to CPU memory.
		d3 := t.dev.CopyDuration(int64(bn) * t.resultSize())
		_, dEnd := tl.Schedule(stream, vclock.ResPCIeD2H, "D2H", d3)
		sc.d2h[buckets%scratchRing] = dEnd

		// Step 4: CPU finishes the search in the leaf nodes.
		d4 := t.cpuLeafStageDuration(bn)
		if err := t.finishLeaves(sc.rbuf, bq, values[start:end], found[start:end], sc.res, sc.refs); err != nil {
			return stats, err
		}
		_, cEnd := tl.Schedule(stream, vclock.ResCPU, "leaf", d4)

		lats = append(lats, cEnd-h2dStart)
		sumT1 += d1
		sumT2 += d2
		sumT3 += d3
		sumT4 += d4
		buckets++
	}
	sc.lats = lats // keep any grown capacity for the next batch

	stats.Buckets = buckets
	stats.setLatencies(lats)
	stats.T1 = sumT1 / vclock.Duration(buckets)
	stats.T2 = sumT2 / vclock.Duration(buckets)
	stats.T3 = sumT3 / vclock.Duration(buckets)
	stats.T4 = sumT4 / vclock.Duration(buckets)
	stats.finalize(tl)
	return stats, nil
}

// numBuffers returns how many buckets may be in flight: 1 for strictly
// sequential handling, 2 for the pipelined strategies ("we restrict the
// number of query buckets in the not-load-balanced version to two"), 3
// with load balancing (Section 5.5).
func (t *Tree[K]) numBuffers() int {
	switch {
	case t.opt.Strategy == Sequential:
		return 1
	case t.opt.LoadBalance:
		return 3
	case t.opt.Strategy == Pipelined:
		return 1 // single staging buffer: next H2D waits for prior D2H (Figure 5)
	default:
		return 2 // double buffering (Figure 6)
	}
}

// copyQueriesToDevice stages a bucket in device memory, returning T1.
// The only failure mode is an injected transfer fault (the buffer is
// sized to BucketSize, so bq always fits).
func (t *Tree[K]) copyQueriesToDevice(qbuf *gpusim.Buffer[K], bq []K) (vclock.Duration, error) {
	return qbuf.CopyFromHost(bq)
}

// runKernel executes the inner-level traversal on the device replica,
// writing intermediate results into rbuf, and returns T2.
func (t *Tree[K]) runKernel(qbuf *gpusim.Buffer[K], rbuf *gpusim.Buffer[int32], bn int) (vclock.Duration, error) {
	switch t.opt.Variant {
	case Implicit:
		if _, err := gpusim.ImplicitSearchKernel(t.dev, t.isegBuf.Data(), t.implDesc,
			qbuf.Data()[:bn], rbuf.Data()[:bn], 0, nil); err != nil {
			return 0, err
		}
		// Charge the per-query transaction count of the descriptor's
		// layout: line-levels, not node-levels, so a tuned tree's wide
		// nodes cost their extra lines. Uniform layouts reduce to Height.
		return t.gpuStageDurationF(bn, float64(t.implDesc.TransPerQuery(0))), nil
	default:
		out := rbuf.Data()
		if _, err := gpusim.RegularSearchKernel(t.dev, t.upperBuf.Data(), t.lastBuf.Data(), t.regDesc,
			qbuf.Data()[:bn], out[:bn], out[bn:2*bn], 0, nil); err != nil {
			return 0, err
		}
		return t.gpuStageDuration(bn, t.regDesc.Height), nil
	}
}

// finishOnCPU runs step 4 functionally: the CPU searches the leaf lines
// named by the device-resident intermediate results.
func (t *Tree[K]) finishOnCPU(rbuf *gpusim.Buffer[int32], bq []K, values []K, found []bool) error {
	return t.finishLeaves(rbuf, bq, values, found, make([]int32, 2*len(bq)), nil)
}

// finishLeaves is finishOnCPU with caller-provided staging: res must
// hold at least 2*len(bq) elements; refs may be nil (the regular
// variant then allocates it) or hold at least len(bq) elements. It
// fails only on an injected D2H fault.
func (t *Tree[K]) finishLeaves(rbuf *gpusim.Buffer[int32], bq []K, values []K, found []bool, res []int32, refs []cpubtree.LeafRef) error {
	bn := len(bq)
	res = res[:2*bn]
	if _, err := rbuf.CopyToHost(res); err != nil {
		return err
	}
	if t.opt.Variant == Implicit {
		t.impl.SearchLeavesBatch(bq, res[:bn], values, found)
		return nil
	}
	if refs == nil {
		refs = make([]cpubtree.LeafRef, bn)
	}
	refs = refs[:bn]
	for i := 0; i < bn; i++ {
		refs[i] = cpubtree.LeafRef{Leaf: res[i], Line: res[bn+i]}
	}
	t.reg.SearchLeavesBatch(bq, refs, values, found)
	return nil
}

// LookupBatchCPU resolves the queries entirely on the CPU using the
// HB+-tree's own node layout — the Appendix B.1 comparison (Figure 19),
// where the implicit HB+-tree pays for its reduced fanout.
func (t *Tree[K]) LookupBatchCPU(queries []K) (values []K, found []bool, stats SearchStats) {
	n := len(queries)
	values = make([]K, n)
	found = make([]bool, n)
	stats = t.LookupBatchCPUInto(queries, values, found)
	return values, found, stats
}

// LookupBatchCPUInto is LookupBatchCPU into caller-owned result slices
// (at least len(queries) long each). It never touches the simulated
// device, which makes it the degraded-mode serving path: when the
// circuit breaker over the GPU-sim is open, the serving layer answers
// every batch through this host-only search at the Appendix B.1 cost.
func (t *Tree[K]) LookupBatchCPUInto(queries []K, values []K, found []bool) (stats SearchStats) {
	n := len(queries)
	stats.Queries = n
	stats.Buckets = 1
	stats.BucketSize = n
	if n == 0 {
		return stats
	}
	if t.impl != nil {
		t.impl.LookupBatch(queries, values[:n], found[:n])
	} else {
		t.reg.LookupBatch(queries, values[:n], found[:n])
	}
	stats.SimTime = t.cpuFullLookupBatch(n, 0)
	if stats.SimTime > 0 {
		stats.ThroughputQPS = float64(n) / stats.SimTime.Seconds()
	}
	p, searches := t.lookupProfile()
	stats.AvgLatency = cpuPerQuery(t.opt.Machine.CPU, t.opt.NodeSearch, searches, p, 0,
		t.opt.PipelineDepth, 0) * vclock.Duration(t.opt.PipelineDepth)
	return stats
}

// RangeStats reports a batch range execution.
type RangeStats struct {
	Queries       int
	Matches       int
	SimTime       vclock.Duration
	ThroughputQPS float64
}

// RangeQueryBatch executes many range queries hybrid-style — the
// workload of Figure 17: the GPU resolves each range's start leaf over
// the I-segment replica (steps 1-3 of Section 5.4), then the CPU scans
// forward through the host-resident leaf chain collecting `count` pairs
// per query. Results are returned per query in submission order.
func (t *Tree[K]) RangeQueryBatch(starts []K, count int) ([][]keys.Pair[K], RangeStats, error) {
	n := len(starts)
	out := make([][]keys.Pair[K], n)
	var stats RangeStats
	stats.Queries = n
	if n == 0 {
		return out, stats, nil
	}
	if t.replicaStale.Load() {
		return nil, stats, fault.ErrReplicaStale
	}
	m := t.opt.BucketSize
	sc, err := t.acquireScratch()
	if err != nil {
		return nil, stats, err
	}
	defer t.releaseScratch(sc)

	tl := sc.tl
	tl.Reset()
	ppl := keys.PerLine[K]() / 2
	leafLines := float64((count + ppl - 1) / ppl)
	cpu := t.opt.Machine.CPU
	buckets := 0
	for start := 0; start < n; start += m {
		end := start + m
		if end > n {
			end = n
		}
		bq := starts[start:end]
		bn := len(bq)
		stream := buckets
		if idx := buckets - 2; idx >= 0 {
			tl.AdvanceStream(stream, sc.d2h[idx%scratchRing])
		}
		d1, err := t.copyQueriesToDevice(sc.qbuf, bq)
		if err != nil {
			return nil, stats, err
		}
		tl.Schedule(stream, vclock.ResPCIeH2D, "H2D", d1)
		d2, err := t.runKernel(sc.qbuf, sc.rbuf, bn)
		if err != nil {
			return nil, stats, err
		}
		tl.Schedule(stream, vclock.ResGPU, "kernel", d2)
		d3 := t.dev.CopyDuration(int64(bn) * t.resultSize())
		_, dEnd := tl.Schedule(stream, vclock.ResPCIeD2H, "D2H", d3)
		sc.d2h[buckets%scratchRing] = dEnd

		// CPU stage: scan `count` pairs from each resolved start leaf.
		res := sc.res[:2*bn]
		if _, err := sc.rbuf.CopyToHost(res); err != nil {
			return nil, stats, err
		}
		for i := 0; i < bn; i++ {
			out[start+i] = t.scanFrom(res, bn, i, bq[i], count)
			stats.Matches += len(out[start+i])
		}
		p := t.leafProfile()
		scan := model.MissProfile{Hit: leafLines * p.Hit, Miss: leafLines * p.Miss}
		mem := (vclock.Duration(scan.Miss)*cpu.LatMem + vclock.Duration(scan.Hit)*cpu.LatLLC) /
			vclock.Duration(cpu.MLPMax)
		pq := cpu.CostHybridSched + vclock.Duration(leafLines*float64(model.AlgoCost(cpu, t.opt.NodeSearch))) + mem
		d4 := model.BatchDuration(cpu, bn, pq, scan.MissBytes(), t.opt.Threads)
		tl.Schedule(stream, vclock.ResCPU, "scan", d4)
		buckets++
	}
	stats.SimTime = tl.Now()
	if stats.SimTime > 0 {
		stats.ThroughputQPS = float64(n) / stats.SimTime.Seconds()
	}
	return out, stats, nil
}

// scanFrom collects up to count pairs starting at the GPU-resolved leaf
// reference for query i — the I-segment is not consulted again.
func (t *Tree[K]) scanFrom(res []int32, bn, i int, start K, count int) []keys.Pair[K] {
	if t.impl != nil {
		return t.impl.RangeFromLine(int(res[i]), start, count, nil)
	}
	return t.reg.RangeFromRef(res[i], int(res[bn+i]), start, count, nil)
}
