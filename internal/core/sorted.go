package core

import (
	"fmt"

	"hbtree/internal/cpubtree"
	"hbtree/internal/fault"
	"hbtree/internal/gpusim"
	"hbtree/internal/keys"
	"hbtree/internal/vclock"
)

// This file is the sorted, level-wise shared-descent batch search: the
// read-path counterpart of the FPGA batch-traversal idea referenced in
// PAPERS.md. A sorted bucket keeps every level's frontier
// non-decreasing, so queries resolving to the same inner node form
// contiguous runs that share one node probe; duplicates collapse to one
// descent entirely. The serving layer's coalescer presorts and
// deduplicates its batches, so the hot path takes the zero-copy fast
// lane below — the sort/permutation machinery only runs for callers
// that hand over unsorted batches, and results always return in caller
// order either way.
//
// On top of the virtual-time accounting (fewer, sequential device
// transactions — see gpusim.KernelDurationShared), the multi-bucket
// pipeline executes the double-buffered overlap for real: a per-scratch
// device worker runs bucket k+1's H2D copy and kernel while the calling
// goroutine finishes bucket k's CPU leaf stage on the second buffer
// pair.

// LookupBatchSorted resolves the queries with the shared-descent batch
// search. Results are byte-identical to LookupBatch over the same
// queries and are returned in caller order — the queries themselves
// need not be sorted (each bucket is sorted internally, tracking the
// permutation), but presorted duplicate-free input skips that work
// entirely. The load-balanced variant has no shared-descent form and
// falls back to the Section 5.5 executor.
func (t *Tree[K]) LookupBatchSorted(queries []K) (values []K, found []bool, stats SearchStats, err error) {
	values = make([]K, len(queries))
	found = make([]bool, len(queries))
	stats, err = t.LookupBatchSortedInto(queries, values, found)
	if err != nil {
		return nil, nil, stats, err
	}
	return values, found, stats, nil
}

// LookupBatchSortedInto is LookupBatchSorted into caller-owned result
// slices (at least len(queries) long each). Like LookupBatchInto, the
// steady state allocates nothing: the sort, permutation, dedup and
// scatter staging all live in the tree's pooled scratch, sized to the
// bucket once (grow-once) on first use.
func (t *Tree[K]) LookupBatchSortedInto(queries []K, values []K, found []bool) (SearchStats, error) {
	n := len(queries)
	if len(values) < n || len(found) < n {
		return SearchStats{}, fmt.Errorf("core: LookupBatchSortedInto: result slices hold %d/%d elements, need %d",
			len(values), len(found), n)
	}
	if t.opt.LoadBalance {
		return t.LookupBatchInto(queries, values, found)
	}
	return t.lookupBatchSortedInto(queries[:n:n], values[:n], found[:n])
}

func (t *Tree[K]) lookupBatchSortedInto(queries []K, values []K, found []bool) (stats SearchStats, err error) {
	stats.Sorted = true
	n := len(queries)
	if n == 0 {
		return stats, nil
	}
	if t.replicaStale.Load() {
		return stats, fault.ErrReplicaStale
	}
	m := t.opt.BucketSize
	stats.BucketSize = m
	stats.Queries = n

	sc, err := t.acquireScratch()
	if err != nil {
		return stats, err
	}
	defer t.releaseScratch(sc)
	if err := t.ensureSorted(sc); err != nil {
		return stats, err
	}

	nbuf := t.numBuffers()
	tl := sc.tl
	tl.Reset()
	if t.traceOn.Load() {
		tl = vclock.NewTimeline()
		tl.SetTrace(true)
		t.setLastTrace(tl)
	}
	var sumT1, sumT2, sumT3, sumT4 vclock.Duration
	lats := sc.lats[:0]

	nBuckets := (n + m - 1) / m
	// The overlapped pipeline engages for multi-bucket double-buffered
	// batches; single-bucket batches (the coalesced serving case) run
	// inline on the caller's goroutine with the original buffer pair.
	overlap := nBuckets > 1 && t.opt.Strategy == DoubleBuffered
	if overlap {
		if err := t.ensureSecondPair(sc); err != nil {
			return stats, err
		}
		t.ensureWorker(sc)
		t.submitSorted(sc, queries, 0, m)
	}

	perQuery := t.perQueryTrans()
	buckets := 0
	for k := 0; k < nBuckets; k++ {
		st := &sc.stage[k%2]
		lo := k * m
		hi := min(lo+m, n)
		bq := queries[lo:hi]
		bn := len(bq)
		qb, rb := sortedPair(sc, k)

		var done devDone
		if overlap {
			done = <-sc.devOut
		} else {
			prepareSorted(st, bq)
			clear(st.lvl[:])
			done.h2d, done.err = qb.CopyFromHost(st.ukeys)
			if done.err == nil {
				done.trans, done.kern, done.err = t.runKernelSorted(qb, rb, st.ukeys, st.lvl[:])
			}
		}
		if done.err != nil {
			return stats, done.err
		}
		u := len(st.ukeys)

		// Hand the worker the NEXT bucket before running this bucket's
		// host leaf stage: the device's H2D and kernel for k+1 overlap
		// leaf(k) in wall-clock time, on the other buffer pair.
		if overlap && k+1 < nBuckets {
			t.submitSorted(sc, queries, k+1, m)
		}

		stream := buckets
		if t.opt.Strategy == Sequential {
			stream = 0
		} else if idx := buckets - nbuf; idx >= 0 {
			tl.AdvanceStream(stream, sc.d2h[idx%scratchRing])
		}
		h2dStart, _ := tl.Schedule(stream, vclock.ResPCIeH2D, "H2D", done.h2d)
		tl.Schedule(stream, vclock.ResGPU, "kernel", done.kern)
		d3 := t.dev.CopyDuration(int64(u) * t.resultSize())
		_, dEnd := tl.Schedule(stream, vclock.ResPCIeD2H, "D2H", d3)
		sc.d2h[buckets%scratchRing] = dEnd

		uvals, ufnd := st.uvals[:u], st.ufnd[:u]
		if st.fast {
			// Presorted duplicate-free bucket: the leaf stage writes
			// straight into the caller's slices, no scatter needed.
			uvals, ufnd = values[lo:hi], found[lo:hi]
		}
		lines, lerr := t.finishLeavesSorted(rb, st.ukeys, uvals, ufnd, sc.res, sc.refs)
		if lerr != nil {
			if overlap && k+1 < nBuckets {
				<-sc.devOut // never leave a worker result for the next batch
			}
			return stats, lerr
		}
		scatterSorted(st, bn, values[lo:hi], found[lo:hi])
		d4 := t.cpuLeafStageDurationShared(u, lines)
		_, cEnd := tl.Schedule(stream, vclock.ResCPU, "leaf", d4)

		lats = append(lats, cEnd-h2dStart)
		sumT1 += done.h2d
		sumT2 += done.kern
		sumT3 += d3
		sumT4 += d4
		stats.NodeProbes += done.trans
		if base := int64(bn) * perQuery; base > done.trans {
			stats.ProbesSaved += base - done.trans
		}
		stats.DedupFolded += st.dups
		stats.LeafLines += lines
		for i := 0; i < StatLevels; i++ {
			stats.LevelProbes[i] += st.lvl[i]
		}
		buckets++
	}
	sc.lats = lats // keep any grown capacity for the next batch

	stats.Buckets = buckets
	stats.setLatencies(lats)
	stats.T1 = sumT1 / vclock.Duration(buckets)
	stats.T2 = sumT2 / vclock.Duration(buckets)
	stats.T3 = sumT3 / vclock.Duration(buckets)
	stats.T4 = sumT4 / vclock.Duration(buckets)
	stats.finalize(tl)
	return stats, nil
}

// submitSorted prepares bucket k's stage and hands its device work to
// the scratch's worker goroutine.
func (t *Tree[K]) submitSorted(sc *searchScratch[K], queries []K, k, m int) {
	st := &sc.stage[k%2]
	lo := k * m
	hi := min(lo+m, len(queries))
	prepareSorted(st, queries[lo:hi])
	clear(st.lvl[:])
	qb, rb := sortedPair(sc, k)
	sc.devCh <- devJob[K]{qbuf: qb, rbuf: rb, keys: st.ukeys, lvl: st.lvl[:]}
}

// sortedPair alternates the two device staging pairs across buckets;
// without the second pair (inline mode) every bucket reuses the first.
func sortedPair[K keys.Key](sc *searchScratch[K], k int) (*gpusim.Buffer[K], *gpusim.Buffer[int32]) {
	if k%2 == 1 && sc.qbuf2 != nil {
		return sc.qbuf2, sc.rbuf2
	}
	return sc.qbuf, sc.rbuf
}

// prepareSorted classifies and stages one bucket. A single scan detects
// the coalescer's contract (sorted ascending, duplicate-free), which
// skips the copy, sort and scatter wholesale; otherwise the bucket is
// copied aside, co-sorted with its caller positions, and deduplicated —
// uref maps each sorted slot to its unique slot so the scatter can fan
// one result out to every duplicate.
func prepareSorted[K keys.Key](st *sortedStage[K], bq []K) {
	bn := len(bq)
	st.dups = 0
	sorted, distinct := true, true
	for i := 1; i < bn; i++ {
		if bq[i] < bq[i-1] {
			sorted = false
			break
		} else if bq[i] == bq[i-1] {
			distinct = false
		}
	}
	if sorted && distinct {
		st.fast = true
		st.permuted = false
		st.ukeys = bq
		return
	}
	st.fast = false
	skeys := st.skeys[:bn]
	copy(skeys, bq)
	st.permuted = !sorted
	if !sorted {
		perm := st.perm[:bn]
		for i := range perm {
			perm[i] = int32(i)
		}
		keys.SortWithPerm(skeys, perm)
	}
	u := 0
	var last K
	uref := st.uref
	for i := 0; i < bn; i++ {
		k := skeys[i]
		if u > 0 && k == last {
			uref[i] = int32(u - 1)
			continue
		}
		skeys[u] = k
		uref[i] = int32(u)
		last = k
		u++
	}
	st.dups = bn - u
	st.ukeys = skeys[:u]
}

// scatterSorted distributes the unique-key results back to caller
// order, fanning each result out to its duplicates. Fast-path buckets
// already wrote in place.
func scatterSorted[K keys.Key](st *sortedStage[K], bn int, values []K, found []bool) {
	if st.fast {
		return
	}
	uref := st.uref
	if !st.permuted {
		for i := 0; i < bn; i++ {
			j := uref[i]
			values[i] = st.uvals[j]
			found[i] = st.ufnd[j]
		}
		return
	}
	perm := st.perm
	for i := 0; i < bn; i++ {
		p := perm[i]
		j := uref[i]
		values[p] = st.uvals[j]
		found[p] = st.ufnd[j]
	}
}

// perQueryTrans is the unsorted kernel's transaction count per query —
// the baseline ProbesSaved is measured against.
func (t *Tree[K]) perQueryTrans() int64 {
	if t.opt.Variant == Regular {
		return int64(t.regDesc.Height) * 3
	}
	return t.implDesc.TransPerQuery(0)
}

// runKernelSorted executes the shared-descent traversal on the device
// replica, returning the transaction count and the modelled T2. Shared
// by the inline path and the scratch's device worker.
func (t *Tree[K]) runKernelSorted(qbuf *gpusim.Buffer[K], rbuf *gpusim.Buffer[int32], ukeys []K, lvl []int64) (int64, vclock.Duration, error) {
	u := len(ukeys)
	switch t.opt.Variant {
	case Implicit:
		trans, err := gpusim.ImplicitSearchKernelSorted(t.dev, t.isegBuf.Data(), t.implDesc,
			qbuf.Data()[:u], rbuf.Data()[:u], lvl)
		if err != nil {
			return 0, 0, err
		}
		return trans, t.gpuStageDurationShared(u, float64(t.implDesc.TransPerQuery(0)), trans), nil
	default:
		out := rbuf.Data()
		trans, err := gpusim.RegularSearchKernelSorted(t.dev, t.upperBuf.Data(), t.lastBuf.Data(), t.regDesc,
			qbuf.Data()[:u], out[:u], out[u:2*u], lvl)
		if err != nil {
			return 0, 0, err
		}
		return trans, t.gpuStageDurationShared(u, float64(t.regDesc.Height), trans), nil
	}
}

// finishLeavesSorted is the sorted leaf stage: D2H of the unique
// results, then the shared leaf search, returning the distinct leaf
// lines touched (what the shared cost model charges).
func (t *Tree[K]) finishLeavesSorted(rbuf *gpusim.Buffer[int32], ukeys []K, values []K, found []bool, res []int32, refs []cpubtree.LeafRef) (int, error) {
	u := len(ukeys)
	res = res[:2*u]
	if _, err := rbuf.CopyToHost(res); err != nil {
		return 0, err
	}
	if t.opt.Variant == Implicit {
		return t.impl.SearchLeavesBatchSorted(ukeys, res[:u], values, found), nil
	}
	refs = refs[:u]
	for i := 0; i < u; i++ {
		refs[i] = cpubtree.LeafRef{Leaf: res[i], Line: res[u+i]}
	}
	return t.reg.SearchLeavesBatchSorted(ukeys, refs, values, found), nil
}
