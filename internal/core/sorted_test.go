package core

import (
	"sort"
	"testing"

	"hbtree/internal/keys"
	"hbtree/internal/workload"
)

// sortedPropQueries builds a query batch mixing present keys, missing
// keys, and duplicates, in random order — the full input space the
// sorted path must handle identically to the plain path.
func sortedPropQueries(pairs []keys.Pair[uint64], n int, seed uint64) []uint64 {
	r := workload.NewRNG(seed)
	qs := make([]uint64, n)
	for i := range qs {
		switch r.Intn(4) {
		case 0: // absent (with overwhelming probability)
			k := r.Uint64()
			if k == keys.Max[uint64]() {
				k--
			}
			qs[i] = k
		case 1: // duplicate an earlier query
			if i > 0 {
				qs[i] = qs[r.Intn(i)]
			} else {
				qs[i] = pairs[r.Intn(len(pairs))].Key
			}
		default: // present
			qs[i] = pairs[r.Intn(len(pairs))].Key
		}
	}
	return qs
}

// TestSortedMatchesUnsortedProperty is the core contract: over random
// key orders, duplicates and missing keys, LookupBatchSorted returns
// byte-identical results to LookupBatch, in caller order, for both
// variants, every strategy, and batch sizes spanning partial, exact and
// multi-bucket shapes.
func TestSortedMatchesUnsortedProperty(t *testing.T) {
	sizes := []int{1, 7, DefaultBucketSize - 1, DefaultBucketSize, DefaultBucketSize + 1, 5*DefaultBucketSize + 13}
	for _, v := range []Variant{Implicit, Regular} {
		for _, s := range []Strategy{Sequential, Pipelined, DoubleBuffered} {
			tr, pairs := build64(t, 60000, Options{Variant: v, Strategy: s})
			seed := uint64(1)
			for _, n := range sizes {
				qs := sortedPropQueries(pairs, n, seed)
				seed++
				bv, bf, _, err := tr.LookupBatch(qs)
				if err != nil {
					t.Fatal(err)
				}
				sv, sf, stats, err := tr.LookupBatchSorted(qs)
				if err != nil {
					t.Fatal(err)
				}
				if !stats.Sorted {
					t.Fatalf("%v/%v: stats not flagged sorted", v, s)
				}
				for i := range qs {
					if sv[i] != bv[i] || sf[i] != bf[i] {
						t.Fatalf("%v/%v n=%d: sorted path diverges at %d (key %d): got (%d,%v), want (%d,%v)",
							v, s, n, i, qs[i], sv[i], sf[i], bv[i], bf[i])
					}
				}
			}
			tr.Close()
		}
	}
}

// TestSortedPresortedFastPath feeds the coalescer's contract — sorted
// ascending, duplicate-free — and checks results plus the absence of
// dedup work.
func TestSortedPresortedFastPath(t *testing.T) {
	for _, v := range []Variant{Implicit, Regular} {
		tr, pairs := build64(t, 50000, Options{Variant: v})
		qs := workload.SearchInput(pairs, 3*DefaultBucketSize, 8)
		sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
		uq := qs[:0:0]
		for i, q := range qs {
			if i == 0 || q != qs[i-1] {
				uq = append(uq, q)
			}
		}
		vals, fnd, stats, err := tr.LookupBatchSorted(uq)
		if err != nil {
			t.Fatal(err)
		}
		checkBatch(t, tr, uq, vals, fnd)
		if stats.DedupFolded != 0 {
			t.Fatalf("%v: presorted distinct batch folded %d", v, stats.DedupFolded)
		}
		tr.Close()
	}
}

// TestSortedProbeAccounting checks the shared-descent win is real and
// consistently surfaced: NodeProbes below the unsorted baseline,
// ProbesSaved the exact complement, per-level counts summing to the
// total, and duplicate batches folding descents away entirely.
func TestSortedProbeAccounting(t *testing.T) {
	tr, pairs := build64(t, 200000, Options{Variant: Implicit})
	qs := workload.SearchInput(pairs, DefaultBucketSize, 4)
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })

	_, _, stats, err := tr.LookupBatchSorted(qs)
	if err != nil {
		t.Fatal(err)
	}
	baseline := int64(len(qs)) * int64(tr.implDesc.Height)
	if stats.NodeProbes <= 0 || stats.NodeProbes >= baseline {
		t.Fatalf("NodeProbes = %d, want in (0, %d)", stats.NodeProbes, baseline)
	}
	if stats.ProbesSaved != baseline-stats.NodeProbes {
		t.Fatalf("ProbesSaved = %d, want %d", stats.ProbesSaved, baseline-stats.NodeProbes)
	}
	var sum int64
	for _, c := range stats.LevelProbes {
		sum += c
	}
	if sum != stats.NodeProbes {
		t.Fatalf("per-level probes sum %d != NodeProbes %d", sum, stats.NodeProbes)
	}
	// The root level is shared by runs: one probe per chunk leader (the
	// kernel fans a bucket across workers), far below one per query.
	if stats.LevelProbes[0] < int64(stats.Buckets) || stats.LevelProbes[0] > int64(len(qs))/8 {
		t.Fatalf("root-level probes = %d, want small (bucket/chunk count)", stats.LevelProbes[0])
	}
	if stats.LeafLines <= 0 || stats.LeafLines > len(qs) {
		t.Fatalf("LeafLines = %d out of range", stats.LeafLines)
	}

	// An all-duplicate bucket folds to a single descent.
	dup := make([]uint64, DefaultBucketSize)
	for i := range dup {
		dup[i] = pairs[123].Key
	}
	vals, fnd, dstats, err := tr.LookupBatchSorted(dup)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, tr, dup, vals, fnd)
	if dstats.DedupFolded != len(dup)-1 {
		t.Fatalf("DedupFolded = %d, want %d", dstats.DedupFolded, len(dup)-1)
	}
	if dstats.NodeProbes != int64(tr.implDesc.Height) {
		t.Fatalf("all-duplicate bucket probed %d nodes, want %d", dstats.NodeProbes, tr.implDesc.Height)
	}
}

// TestSortedRegularProbeAccounting mirrors the probe checks on the
// pointer-based variant (3 transactions per fresh node, +1 on an inner
// sub-node change).
func TestSortedRegularProbeAccounting(t *testing.T) {
	tr, pairs := build64(t, 200000, Options{Variant: Regular})
	qs := workload.SearchInput(pairs, DefaultBucketSize, 6)
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	_, _, stats, err := tr.LookupBatchSorted(qs)
	if err != nil {
		t.Fatal(err)
	}
	baseline := int64(len(qs)) * int64(tr.regDesc.Height) * 3
	if stats.NodeProbes <= 0 || stats.NodeProbes >= baseline {
		t.Fatalf("NodeProbes = %d, want in (0, %d)", stats.NodeProbes, baseline)
	}
	if stats.ProbesSaved != baseline-stats.NodeProbes {
		t.Fatalf("ProbesSaved = %d, want %d", stats.ProbesSaved, baseline-stats.NodeProbes)
	}
	var sum int64
	for _, c := range stats.LevelProbes {
		sum += c
	}
	if sum != stats.NodeProbes {
		t.Fatalf("per-level probes sum %d != NodeProbes %d", sum, stats.NodeProbes)
	}
}

// TestSortedLoadBalanceDelegates: the balanced executor has no sorted
// form; LookupBatchSorted must still answer correctly through it.
func TestSortedLoadBalanceDelegates(t *testing.T) {
	tr, pairs := build64(t, 150000, Options{Variant: Implicit, LoadBalance: true})
	qs := sortedPropQueries(pairs, 3*DefaultBucketSize, 21)
	bv, bf, _, err := tr.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	sv, sf, _, err := tr.LookupBatchSorted(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if sv[i] != bv[i] || sf[i] != bf[i] {
			t.Fatalf("load-balanced sorted path diverges at %d", i)
		}
	}
}

// TestSortedEmptyAndShortResults covers the trivial batch and the
// result-slice length check.
func TestSortedEmptyAndShortResults(t *testing.T) {
	tr, pairs := build64(t, 1000, Options{Variant: Implicit})
	if stats, err := tr.LookupBatchSortedInto(nil, nil, nil); err != nil || stats.Queries != 0 {
		t.Fatalf("empty sorted batch mishandled: %+v %v", stats, err)
	}
	qs := []uint64{pairs[0].Key, pairs[1].Key}
	if _, err := tr.LookupBatchSortedInto(qs, make([]uint64, 1), make([]bool, 2)); err == nil {
		t.Fatal("short value slice accepted")
	}
}
