package core

import (
	"hbtree/internal/cpubtree"
	"hbtree/internal/vclock"
)

// In-place batch updates under epochs (DESIGN §10). A write batch whose
// per-leaf footprint fits the gapped leaves' slack slots does not need
// the clone-and-swap path at all: ApplyDelta forks the tree — sharing
// every host pool except the per-leaf metadata and, crucially, the
// device-resident I-segment replica — and appends the batch into leaf
// gaps the parent epoch never reads. Readers pinned to older epochs
// keep seeing their exact slot images (publication is the per-leaf
// delta count on the fork's private metadata; no slot live in an older
// epoch is ever reused), and the device image needs zero transfer
// because the inner pools are byte-identical across the chain.

// ApplyDelta attempts to apply ops as an in-place gapped-leaf batch,
// returning a shared-pool fork that serves the post-batch epoch. It
// reports ok=false — leaving t and plan reusable — when the batch does
// not qualify: non-regular variant, or some touched leaf would
// overflow its gap capacity or be emptied (the structural cases that
// need the clone path). plan is caller-owned scratch so steady-state
// planning allocates nothing.
//
// The fork shares t's leaf and inner pools; it must never receive
// structural mutations (Update, MixedBatch) — Clone() it first, which
// compacts the deltas back into packed leaves. Close the fork like any
// tree: the shared device buffers are refcounted and freed with the
// chain's last member.
func (t *Tree[K]) ApplyDelta(ops []cpubtree.Op[K], plan *cpubtree.DeltaPlan[K]) (*Tree[K], UpdateStats, bool) {
	if t.opt.Variant != Regular || len(ops) == 0 {
		return nil, UpdateStats{}, false
	}
	if !t.reg.PlanDelta(ops, plan) {
		return nil, UpdateStats{}, false
	}
	nt := &Tree[K]{
		opt:              t.opt,
		dev:              t.dev,
		upperBuf:         t.upperBuf,
		lastBuf:          t.lastBuf,
		bufShare:         t.bufShare,
		regDesc:          t.regDesc,
		balanced:         t.balanced,
		lbD:              t.lbD,
		lbR:              t.lbR,
		leafMissOverride: t.leafMissOverride,
		buildStats:       t.buildStats,
		scratch:          make(chan *searchScratch[K], scratchPoolCap),
	}
	nt.replicaStale.Store(t.replicaStale.Load())
	if nt.bufShare != nil {
		nt.bufShare.refs.Add(1)
	}
	nt.reg = t.reg.ForkDelta()
	res := nt.reg.ApplyPlannedDelta(ops, plan)

	stats := UpdateStats{
		Ops:        len(ops),
		Applied:    res.Applied,
		NotFound:   res.NotFound,
		DirtyNodes: len(res.DirtyLast),
		InPlace:    true,
		// The whole batch is lookup-bound: each op descends to its leaf
		// and writes one gap slot — no packed-leaf shifting, no
		// I-segment transfer (SyncTime stays zero).
		HostTime: vclock.Duration(len(ops)) * t.deltaPerOpCost(),
	}
	return nt, stats, true
}

// deltaPerOpCost models one gapped-leaf update: the serial lookup of
// updatePerOpCost without the packed-leaf shift term (a gap append
// touches one pair slot, not half a leaf).
func (t *Tree[K]) deltaPerOpCost() vclock.Duration {
	cpu := t.opt.Machine.CPU
	p, searches := t.lookupProfile()
	return cpuPerQuery(cpu, t.opt.NodeSearch, searches, p, 0, 1, lockOverhead)
}

// CloneFootprint reports the host copy cost of cloning this tree — the
// amplification ApplyDelta avoids. Zero for the implicit variant
// (whose write path is whole-tree rebuild, not clone-and-swap).
func (t *Tree[K]) CloneFootprint() (nodes int, bytes int64) {
	if t.reg == nil {
		return 0, 0
	}
	return t.reg.CloneFootprint()
}

// DeltaLeaves reports how many big leaves currently carry un-compacted
// delta entries (always zero after Clone, which compacts).
func (t *Tree[K]) DeltaLeaves() int {
	if t.reg == nil {
		return 0
	}
	return t.reg.DeltaLeaves()
}
