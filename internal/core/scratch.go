package core

import (
	"fmt"

	"hbtree/internal/cpubtree"
	"hbtree/internal/gpusim"
	"hbtree/internal/keys"
	"hbtree/internal/vclock"
)

// This file provides the pooled per-batch working state that makes the
// steady-state serving path allocation-free: the device staging buffers
// of the four-step search, the host-side intermediate-result staging,
// the virtual timeline, and the per-bucket latency records. Without it
// every LookupBatch call paid two device allocations, a timeline, a
// map, and several slices — garbage that a server processing millions
// of lookups per second cannot afford.

// scratchPoolCap bounds how many scratch sets a tree keeps alive
// between batches; concurrent batches beyond the cap allocate and free
// their scratch instead of pooling it.
const scratchPoolCap = 4

// scratchRing is the d2h completion ring size; it must exceed the
// maximum in-flight bucket count (numBuffers <= 3).
const scratchRing = 4

// searchScratch is one batch execution's reusable working state.
type searchScratch[K keys.Key] struct {
	qbuf *gpusim.Buffer[K]     // device query staging (BucketSize elements)
	rbuf *gpusim.Buffer[int32] // device intermediate results (2*BucketSize)

	res  []int32                // host staging for D2H results
	refs []cpubtree.LeafRef     // regular-variant leaf references
	lats []vclock.Duration      // per-bucket completion latencies
	d2h  [scratchRing]vclock.Duration // completion ring for buffer reuse edges
	tl   *vclock.Timeline
}

// newSearchScratch allocates scratch sized for the tree's bucket.
func (t *Tree[K]) newSearchScratch() (*searchScratch[K], error) {
	m := t.opt.BucketSize
	qbuf, err := gpusim.Malloc[K](t.dev, m)
	if err != nil {
		return nil, fmt.Errorf("core: allocating query buffer: %w", err)
	}
	rbuf, err := gpusim.Malloc[int32](t.dev, 2*m)
	if err != nil {
		qbuf.Free()
		return nil, fmt.Errorf("core: allocating result buffer: %w", err)
	}
	return &searchScratch[K]{
		qbuf: qbuf,
		rbuf: rbuf,
		res:  make([]int32, 2*m),
		refs: make([]cpubtree.LeafRef, m),
		lats: make([]vclock.Duration, 0, 8),
		tl:   vclock.NewTimeline(),
	}, nil
}

// free releases the scratch's device memory.
func (s *searchScratch[K]) free() {
	s.qbuf.Free()
	s.rbuf.Free()
}

// acquireScratch takes a pooled scratch or allocates a fresh one.
func (t *Tree[K]) acquireScratch() (*searchScratch[K], error) {
	select {
	case sc := <-t.scratch:
		return sc, nil
	default:
		return t.newSearchScratch()
	}
}

// releaseScratch returns scratch to the pool, or frees it when the pool
// is full.
func (t *Tree[K]) releaseScratch(sc *searchScratch[K]) {
	select {
	case t.scratch <- sc:
	default:
		sc.free()
	}
}

// drainScratch frees every pooled scratch (Close path; idempotent).
func (t *Tree[K]) drainScratch() {
	for {
		select {
		case sc := <-t.scratch:
			sc.free()
		default:
			return
		}
	}
}
