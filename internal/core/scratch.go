package core

import (
	"fmt"

	"hbtree/internal/cpubtree"
	"hbtree/internal/gpusim"
	"hbtree/internal/keys"
	"hbtree/internal/vclock"
)

// This file provides the pooled per-batch working state that makes the
// steady-state serving path allocation-free: the device staging buffers
// of the four-step search, the host-side intermediate-result staging,
// the virtual timeline, and the per-bucket latency records. Without it
// every LookupBatch call paid two device allocations, a timeline, a
// map, and several slices — garbage that a server processing millions
// of lookups per second cannot afford.

// scratchPoolCap bounds how many scratch sets a tree keeps alive
// between batches; concurrent batches beyond the cap allocate and free
// their scratch instead of pooling it.
const scratchPoolCap = 4

// scratchRing is the d2h completion ring size; it must exceed the
// maximum in-flight bucket count (numBuffers <= 3).
const scratchRing = 4

// sortedStage is one bucket's sorted-path staging. Two stages alternate
// with the two device buffer pairs, so the device worker can stage and
// search bucket k+1 while the caller's goroutine still needs bucket k's
// permutation for the result scatter.
type sortedStage[K keys.Key] struct {
	skeys []K     // sorted (then deduplicated) copy of the bucket's keys
	perm  []int32 // caller position of each sorted slot (nil: identity)
	uref  []int32 // sorted slot -> unique slot after dedup
	uvals []K     // per-unique-key leaf results
	ufnd  []bool
	lvl   [StatLevels]int64 // per-level kernel transaction counts

	ukeys    []K  // kernel input: skeys[:u] or the caller's bucket (fast path)
	fast     bool // input already sorted and duplicate-free: no scatter
	permuted bool // bucket was sorted here: scatter through perm
	dups     int  // duplicate keys folded out of this bucket
}

// devJob asks the scratch's device worker to stage one sorted bucket:
// H2D copy of the unique keys into qbuf, then the shared-descent kernel
// into rbuf.
type devJob[K keys.Key] struct {
	qbuf *gpusim.Buffer[K]
	rbuf *gpusim.Buffer[int32]
	keys []K
	lvl  []int64
}

// devDone is the worker's reply: the modelled H2D and kernel durations,
// the kernel's transaction count, and any injected fault.
type devDone struct {
	h2d   vclock.Duration
	kern  vclock.Duration
	trans int64
	err   error
}

// searchScratch is one batch execution's reusable working state.
type searchScratch[K keys.Key] struct {
	qbuf *gpusim.Buffer[K]     // device query staging (BucketSize elements)
	rbuf *gpusim.Buffer[int32] // device intermediate results (2*BucketSize)

	res  []int32                      // host staging for D2H results
	refs []cpubtree.LeafRef           // regular-variant leaf references
	lats []vclock.Duration            // per-bucket completion latencies
	d2h  [scratchRing]vclock.Duration // completion ring for buffer reuse edges
	tl   *vclock.Timeline

	// Sorted-path state, allocated grow-once on first use
	// (ensureSorted): the second device buffer pair that lets the
	// worker stage bucket k+1 while the host finishes bucket k, and the
	// two alternating sort/dedup/scatter stages.
	qbuf2  *gpusim.Buffer[K]
	rbuf2  *gpusim.Buffer[int32]
	stage  [2]sortedStage[K]
	devCh  chan devJob[K]
	devOut chan devDone
	worker bool
}

// newSearchScratch allocates scratch sized for the tree's bucket.
func (t *Tree[K]) newSearchScratch() (*searchScratch[K], error) {
	m := t.opt.BucketSize
	qbuf, err := gpusim.Malloc[K](t.dev, m)
	if err != nil {
		return nil, fmt.Errorf("core: allocating query buffer: %w", err)
	}
	rbuf, err := gpusim.Malloc[int32](t.dev, 2*m)
	if err != nil {
		qbuf.Free()
		return nil, fmt.Errorf("core: allocating result buffer: %w", err)
	}
	return &searchScratch[K]{
		qbuf: qbuf,
		rbuf: rbuf,
		res:  make([]int32, 2*m),
		refs: make([]cpubtree.LeafRef, m),
		lats: make([]vclock.Duration, 0, 8),
		tl:   vclock.NewTimeline(),
	}, nil
}

// free releases the scratch's device memory and stops its worker.
func (s *searchScratch[K]) free() {
	s.qbuf.Free()
	s.rbuf.Free()
	if s.qbuf2 != nil {
		s.qbuf2.Free()
		s.rbuf2.Free()
	}
	if s.worker {
		close(s.devCh)
		s.worker = false
	}
}

// ensureSorted sizes the sorted-path staging exactly once per scratch
// (grow-once: every buffer is cut to the full bucket size on first use,
// so no later batch — at any coalesce window up to BucketSize —
// triggers a re-allocation). It is the only allocation the sorted path
// ever performs after the scratch itself is pooled.
func (t *Tree[K]) ensureSorted(sc *searchScratch[K]) error {
	if sc.stage[0].skeys != nil {
		return nil
	}
	m := t.opt.BucketSize
	for i := range sc.stage {
		st := &sc.stage[i]
		st.skeys = make([]K, m)
		st.perm = make([]int32, m)
		st.uref = make([]int32, m)
		st.uvals = make([]K, m)
		st.ufnd = make([]bool, m)
	}
	return nil
}

// ensureSecondPair allocates the second device staging pair for the
// overlapped multi-bucket pipeline (single-bucket batches never need
// it, so a serving deployment with MaxBatch <= BucketSize pays no extra
// device memory).
func (t *Tree[K]) ensureSecondPair(sc *searchScratch[K]) error {
	if sc.qbuf2 != nil {
		return nil
	}
	m := t.opt.BucketSize
	qbuf2, err := gpusim.Malloc[K](t.dev, m)
	if err != nil {
		return fmt.Errorf("core: allocating second query buffer: %w", err)
	}
	rbuf2, err := gpusim.Malloc[int32](t.dev, 2*m)
	if err != nil {
		qbuf2.Free()
		return fmt.Errorf("core: allocating second result buffer: %w", err)
	}
	sc.qbuf2, sc.rbuf2 = qbuf2, rbuf2
	return nil
}

// ensureWorker starts the scratch's device worker goroutine, which
// stays alive until the scratch is freed: the sorted multi-bucket
// pipeline hands it bucket k+1's H2D copy and kernel while the calling
// goroutine finishes bucket k's leaf stage — the double-buffered
// overlap executed for real, not only on the virtual timeline.
func (t *Tree[K]) ensureWorker(sc *searchScratch[K]) {
	if sc.worker {
		return
	}
	sc.devCh = make(chan devJob[K], 1)
	sc.devOut = make(chan devDone, 1)
	sc.worker = true
	go t.devWorker(sc)
}

// devWorker serves the scratch's device jobs until the channel closes.
func (t *Tree[K]) devWorker(sc *searchScratch[K]) {
	for job := range sc.devCh {
		var out devDone
		out.h2d, out.err = job.qbuf.CopyFromHost(job.keys)
		if out.err == nil {
			out.trans, out.kern, out.err = t.runKernelSorted(job.qbuf, job.rbuf, job.keys, job.lvl)
		}
		sc.devOut <- out
	}
}

// acquireScratch takes a pooled scratch or allocates a fresh one.
func (t *Tree[K]) acquireScratch() (*searchScratch[K], error) {
	select {
	case sc := <-t.scratch:
		return sc, nil
	default:
		return t.newSearchScratch()
	}
}

// releaseScratch returns scratch to the pool, or frees it when the pool
// is full.
func (t *Tree[K]) releaseScratch(sc *searchScratch[K]) {
	select {
	case t.scratch <- sc:
	default:
		sc.free()
	}
}

// drainScratch frees every pooled scratch (Close path; idempotent).
func (t *Tree[K]) drainScratch() {
	for {
		select {
		case sc := <-t.scratch:
			sc.free()
		default:
			return
		}
	}
}
