package core

import (
	"bytes"
	"testing"

	"hbtree/internal/workload"
)

func TestCoreSaveLoadImplicit(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 40000, 42)
	tr, err := Build(pairs, Options{Variant: Implicit})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	lt, err := Load[uint64](&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	if lt.Options().Variant != Implicit {
		t.Fatal("variant not restored")
	}
	if err := lt.VerifyReplica(); err != nil {
		t.Fatalf("loaded replica inconsistent: %v", err)
	}
	qs := workload.SearchInput(pairs, 20000, 3)
	vals, fnd, stats, err := lt.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if !fnd[i] || vals[i] != workload.ValueFor(q) {
			t.Fatalf("loaded hybrid lookup %d failed", i)
		}
	}
	if stats.ThroughputQPS <= 0 {
		t.Fatal("no throughput")
	}
}

func TestCoreSaveLoadRegularWithUpdates(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 30000, 5)
	tr, err := Build(pairs, Options{Variant: Regular, LeafFill: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ops := makeUpdateOps(pairs, 5000, 0.3, 7)
	if _, err := tr.Update(ops, AsyncParallel); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	lt, err := Load[uint64](&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	if lt.NumPairs() != tr.NumPairs() {
		t.Fatalf("pairs diverge: %d vs %d", lt.NumPairs(), tr.NumPairs())
	}
	// The loaded tree supports further updates with a consistent replica.
	more := makeUpdateOps(pairs, 2000, 0.5, 11)
	if _, err := lt.Update(more, Synchronized); err != nil {
		t.Fatal(err)
	}
	if err := lt.VerifyReplica(); err != nil {
		t.Fatal(err)
	}
	a := tr.RangeQuery(0, 1000, nil)
	_ = a // original unaffected by the loaded copy's updates
}

func TestCoreLoadGarbage(t *testing.T) {
	if _, err := Load[uint64](bytes.NewReader([]byte{9, 1, 2, 3}), Options{}); err == nil {
		t.Fatal("garbage variant accepted")
	}
	if _, err := Load[uint64](bytes.NewReader(nil), Options{}); err == nil {
		t.Fatal("empty input accepted")
	}
}
