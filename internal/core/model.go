package core

import (
	"hbtree/internal/keys"
	"hbtree/internal/model"
	"hbtree/internal/platform"
	"hbtree/internal/simd"
	"hbtree/internal/vclock"
)

// This file is the calibrated CPU/GPU cost model that converts
// functionally measured event counts (cache-line touches per level, LLC
// hit fractions, TLB walks, transfer bytes, GPU transactions) into
// virtual durations. Together with the vclock.Timeline it reproduces the
// timing algebra of Section 5.4:
//
//	T1 = T_init + M*S/Bandwidth          (bucket H2D copy)
//	T2 = K_init + (M/SIMD_G) * P_GPU     (GPU inner traversal)
//	T3 = T_init + M*R/Bandwidth          (intermediate result D2H copy)
//	T4 = (M/SIMD_C) * P_CPU              (CPU leaf search)
//
// and the strategy costs T_S = ΣT_i (sequential),
// T_P = T1 + max(T2+T3, T4) (pipelined) and T_P = max(T2, T4)
// (double-buffered).

// regularKernelDivergence derates GPU bandwidth for the regular tree's
// three-phase node search, whose index-line/key-line/reference accesses
// diverge more than the implicit kernel's single coalesced stream.
const regularKernelDivergence = 0.65

// mlpLeafStage is the memory-level parallelism of the hybrid leaf stage:
// its leaf lines come from an independent result array (not a dependent
// descent), so the out-of-order core overlaps a couple of misses even
// without software pipelining.
const mlpLeafStage = 2

// mlpSerialPhase is the fraction of a miss's latency that cannot be
// overlapped even at maximal memory-level parallelism (address
// generation, dependent issue).
const lockOverhead = 40 * vclock.Nanosecond // striped-mutex cost per op in mixed batches

// missProfile aliases the shared model's profile type; helpers below
// keep the call sites terse.
type missProfile = model.MissProfile

func profileLevels(levelBytes []int64, levelLines []float64, llcBytes int64) missProfile {
	return model.ProfileLevels(levelBytes, levelLines, llcBytes)
}

// lookupProfile returns the miss profile and in-node search count of one
// full lookup on the underlying tree.
func (t *Tree[K]) lookupProfile() (missProfile, float64) {
	llc := t.opt.Machine.CPU.LLCBytes
	if t.impl != nil {
		h := t.impl.Height()
		st := t.impl.Stats()
		geom := t.impl.LevelGeometry()
		bytes := make([]int64, h+1)
		lines := make([]float64, h+1)
		for d := 0; d < h; d++ {
			// A tuned level's wide nodes span several lines; each probe
			// touches all of them. Uniform levels are the historical
			// one-line-per-node shape.
			ln := int64(geom[d].Kpn / keys.PerLine[K]())
			bytes[d] = int64(geom[d].Nodes) * ln * keys.LineBytes
			lines[d] = float64(ln)
		}
		bytes[h] = st.LeafBytes
		lines[h] = 1
		return profileLevels(bytes, lines, llc), float64(h + 1)
	}
	counts := t.reg.LevelNodeCounts()
	st := t.reg.Stats()
	nodeBytes := int64(17 * keys.LineBytes) // S_I
	if keys.Size[K]() == 4 {
		nodeBytes = 33 * keys.LineBytes
	}
	h := len(counts)
	bytes := make([]int64, h+1)
	lines := make([]float64, h+1)
	for d := 0; d < h; d++ {
		bytes[d] = int64(counts[d]) * nodeBytes
		if d == h-1 {
			lines[d] = 2 // last-level node: index line + key line
		} else {
			lines[d] = 3 // index line + key line + reference line
		}
	}
	bytes[h] = st.LeafBytes
	lines[h] = 1
	return profileLevels(bytes, lines, llc), 2*float64(h) - 1
}

// leafProfile returns the miss profile of the CPU leaf stage alone
// (step 4 of the hybrid search): one leaf-line touch per query.
func (t *Tree[K]) leafProfile() missProfile {
	if t.leafMissOverride >= 0 && t.leafMissOverride <= 1 {
		return missProfile{Hit: 1 - t.leafMissOverride, Miss: t.leafMissOverride}
	}
	llc := t.opt.Machine.CPU.LLCBytes
	var leafBytes int64
	if t.impl != nil {
		leafBytes = t.impl.Stats().LeafBytes
	} else {
		leafBytes = t.reg.Stats().LeafBytes
	}
	return profileLevels([]int64{leafBytes}, []float64{1}, llc)
}

// topLevelsProfile returns the miss profile and node-search count of the
// CPU's top-D-level share in load-balanced mode (Section 5.5: "the space
// required for them is comparably lower ... resulting in better cache
// utilization").
func (t *Tree[K]) topLevelsProfile(depth float64) (missProfile, float64) {
	llc := t.opt.Machine.CPU.LLCBytes
	d := int(depth)
	fr := depth - float64(d)
	if t.impl != nil {
		h := t.impl.Height()
		if d > h {
			d, fr = h, 0
		}
		geom := t.impl.LevelGeometry()
		bytes := make([]int64, 0, d+1)
		lines := make([]float64, 0, d+1)
		for lvl := 0; lvl < d; lvl++ {
			ln := int64(geom[lvl].Kpn / keys.PerLine[K]())
			bytes = append(bytes, int64(geom[lvl].Nodes)*ln*keys.LineBytes)
			lines = append(lines, float64(ln))
		}
		if fr > 0 && d < h {
			ln := int64(geom[d].Kpn / keys.PerLine[K]())
			bytes = append(bytes, int64(geom[d].Nodes)*ln*keys.LineBytes)
			lines = append(lines, fr*float64(ln))
		}
		return profileLevels(bytes, lines, llc), depth
	}
	counts := t.reg.LevelNodeCounts()
	nodeBytes := int64(17 * keys.LineBytes)
	if keys.Size[K]() == 4 {
		nodeBytes = 33 * keys.LineBytes
	}
	h := len(counts)
	if d > h {
		d, fr = h, 0
	}
	bytes := make([]int64, 0, d+1)
	lines := make([]float64, 0, d+1)
	searches := 0.0
	for lvl := 0; lvl < d; lvl++ {
		bytes = append(bytes, int64(counts[lvl])*nodeBytes)
		lines = append(lines, 3)
		searches += 2
	}
	if fr > 0 && d < h {
		bytes = append(bytes, int64(counts[d])*nodeBytes)
		lines = append(lines, 3*fr)
		searches += 2 * fr
	}
	return profileLevels(bytes, lines, llc), searches
}

// cpuPerQuery and cpuBatchDuration delegate to the shared cost model.
func cpuPerQuery(cpu platform.CPU, algo simd.Algorithm, nodeSearches float64, p missProfile, walk vclock.Duration, swDepth int, extra vclock.Duration) vclock.Duration {
	return model.PerQuery(cpu, algo, nodeSearches, p, walk, swDepth, extra)
}

func cpuBatchDuration(cpu platform.CPU, n int, perQuery vclock.Duration, missBytes float64, threads int) vclock.Duration {
	return model.BatchDuration(cpu, n, perQuery, missBytes, threads)
}

// cpuFullLookupBatch models the CPU-optimized baseline: a batch of n
// full-tree lookups with the tree's own geometry (used by the harness
// for Figures 7b, 8, 16, 19 and 20).
func (t *Tree[K]) cpuFullLookupBatch(n int, walk vclock.Duration) vclock.Duration {
	p, searches := t.lookupProfile()
	pq := cpuPerQuery(t.opt.Machine.CPU, t.opt.NodeSearch, searches, p, walk, t.opt.PipelineDepth, 0)
	return cpuBatchDuration(t.opt.Machine.CPU, n, pq, p.Miss*keys.LineBytes, t.opt.Threads)
}

// cpuLeafStageDuration models step 4 of the hybrid search: n leaf-line
// searches plus the hybrid scheduling overhead per query. Unlike a full
// tree lookup, the leaf stage walks the GPU's result array in order with
// little software-pipelining headroom, so misses overlap only at the
// core's natural MLP — which is exactly why skewed workloads, whose leaf
// touches hit the LLC, speed the hybrid search up (Figure 12).
func (t *Tree[K]) cpuLeafStageDuration(n int) vclock.Duration {
	cpu := t.opt.Machine.CPU
	p := t.leafProfile()
	pq := t.leafStagePerQuery(p)
	return cpuBatchDuration(cpu, n, pq, p.Miss*keys.LineBytes, t.opt.Threads)
}

// leafStagePerQuery is the per-query cost of the hybrid leaf stage: the
// scheduling/coordination overhead, one in-node search, and the leaf
// line's memory time at the unpipelined MLP.
func (t *Tree[K]) leafStagePerQuery(p missProfile) vclock.Duration {
	cpu := t.opt.Machine.CPU
	extra := cpu.CostHybridSched
	if t.opt.Variant == Regular {
		// Decoding the (leaf, line) intermediate reference costs a bit
		// more than the implicit variant's single line index.
		extra += 5 * vclock.Nanosecond
	}
	mem := (vclock.Duration(p.Miss)*cpu.LatMem + vclock.Duration(p.Hit)*cpu.LatLLC) /
		vclock.Duration(mlpLeafStage)
	return extra + vclock.Duration(float64(model.AlgoCost(cpu, t.opt.NodeSearch))*p.Lines()) + mem
}

// cpuLeafStageDurationShared is cpuLeafStageDuration for a sorted
// bucket whose u queries touched only `lines` distinct leaf lines:
// adjacent sorted queries landing in the same line find it resident, so
// the memory side of the profile scales by lines/u while the per-query
// scheduling overhead stays.
func (t *Tree[K]) cpuLeafStageDurationShared(u, lines int) vclock.Duration {
	cpu := t.opt.Machine.CPU
	p := t.leafProfile()
	if u > 0 && lines < u {
		f := float64(lines) / float64(u)
		p = missProfile{Hit: p.Hit * f, Miss: p.Miss * f}
	}
	pq := t.leafStagePerQuery(p)
	return cpuBatchDuration(cpu, u, pq, p.Miss*keys.LineBytes, t.opt.Threads)
}

// gpuStageDurationShared models T2 of the shared-descent kernel: the
// transaction count the sorted kernel actually issued replaces the
// per-query descent's n*levels*transPerLevel.
func (t *Tree[K]) gpuStageDurationShared(n int, levels float64, trans int64) vclock.Duration {
	if levels <= 0 {
		return 0
	}
	if t.opt.Variant == Regular {
		return t.dev.KernelDurationShared(n, levels, trans, 3, t.warpThreads())
	}
	return t.dev.KernelDurationShared(n, levels, trans, 1, t.warpThreads())
}

// cpuTopStageDuration models the CPU share of the load-balanced search:
// the software-pipelined pre-walk of the top `depth` levels plus the
// leaf stage (Equation 4 with depth = D + R_fraction). It matches the
// sum the balanced executor schedules on the CPU station.
func (t *Tree[K]) cpuTopStageDuration(n int, depth float64) vclock.Duration {
	return t.cpuPreStageDuration(n, depth) + t.cpuLeafStageDuration(n)
}

// gpuStageDuration models step 2: the GPU traversal of `levels` inner
// levels for n queries.
func (t *Tree[K]) gpuStageDuration(n int, levels int) vclock.Duration {
	if levels <= 0 {
		return 0
	}
	return t.gpuStageDurationF(n, float64(levels))
}

// warpThreads is T, the GPU threads dedicated per query: 8 for 64-bit
// keys, 16 for 32-bit keys (Section 5.3).
func (t *Tree[K]) warpThreads() int { return keys.PerLine[K]() }

// querySize returns S, the per-query payload bytes of the H2D copy.
func querySize[K keys.Key]() int64 { return int64(keys.Size[K]()) }

// resultSize returns R, the per-query intermediate-result bytes of the
// D2H copy: a leaf line index for the implicit tree, a (leaf, line)
// reference for the regular tree.
func (t *Tree[K]) resultSize() int64 {
	if t.opt.Variant == Regular {
		return 8
	}
	return 4
}

// SetLeafMissOverride fixes the modelled LLC miss fraction of the CPU
// leaf stage, overriding the analytic estimate. The skew experiment
// (Figure 12) measures the actual hit rate of the leaf touches under a
// query distribution with the LLC simulator and injects it here; pass a
// negative value to restore the analytic profile.
func (t *Tree[K]) SetLeafMissOverride(frac float64) {
	t.leafMissOverride = frac
}

// PointLookupCost models one dependent, unpipelined point lookup on the
// CPU path: a full root-to-leaf descent with no software pipelining and
// no batch to amortise across — the per-request serving cost that a
// coalesced LookupBatch amortises away. internal/serve charges it for
// every request served outside a batch.
func (t *Tree[K]) PointLookupCost() vclock.Duration {
	p, searches := t.lookupProfile()
	return cpuPerQuery(t.opt.Machine.CPU, t.opt.NodeSearch, searches, p, 0, 1, 0)
}

// GPUStageDuration exposes the modelled kernel time (T2 of Section 5.4)
// for a bucket of n queries over the full inner traversal; the harness
// uses it to bound hybrid range-query throughput.
func (t *Tree[K]) GPUStageDuration(n int) vclock.Duration {
	return t.gpuStageDuration(n, t.Height())
}
