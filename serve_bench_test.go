// Benchmarks (and an acceptance test) for the concurrent serving layer:
// per-request point lookups versus coalesced heterogeneous batches,
// compared on the paper's virtual clock.
//
// Per-request serving charges each GET the serial descent cost
// (Server.PointLookupCost); with C concurrent clients, up to
// min(C, CPU threads) descents overlap, so the virtual makespan is
// total/parallelism. Coalesced serving folds all clients' GETs into
// bucket-sized LookupBatch calls, which serialize on the (single) GPU
// pipeline but amortise transfer and launch overheads across the batch.
package hbtree_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hbtree"
	"hbtree/internal/serve"
)

const (
	serveBenchPairs = 1 << 18
	servePerClient  = 4096 // async submission depth per coalesced client
	serveBatch      = 0    // 0 = the tree's bucket size (16K default), the paper's operating point
	// The window is real (wall-clock) time: collecting a submission costs
	// ~100ns of channel traffic, so the window must be wide enough for
	// MaxBatch submissions to arrive or every flush is deadline-truncated.
	serveBenchWindow = 2 * time.Millisecond
)

// newServeBenchServer builds the shared fixture tree (default paper
// options: implicit variant, 16K buckets on machine M1).
func newServeBenchServer(tb testing.TB) (*hbtree.Server[uint64], []hbtree.Pair[uint64]) {
	tb.Helper()
	pairs := hbtree.GeneratePairs[uint64](serveBenchPairs, 42)
	tree, err := hbtree.New(pairs, hbtree.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	srv := hbtree.NewServer(tree)
	tb.Cleanup(srv.Close)
	return srv, pairs
}

// perRequestVMQPS serves clients×perClient point lookups through
// Server.Lookup from `clients` goroutines and returns the virtual
// throughput in million queries per second. Descents on distinct CPU
// threads overlap, so the makespan divides by min(clients, threads).
func perRequestVMQPS(tb testing.TB, srv *hbtree.Server[uint64], pairs []hbtree.Pair[uint64], clients, perClient int) float64 {
	tb.Helper()
	srv.ResetMetrics()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				k := pairs[(c*perClient+i*31)%len(pairs)].Key
				if _, ok := srv.Lookup(k); !ok {
					tb.Errorf("lookup miss for key %d", k)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	parallel := clients
	if threads := srv.Options().Threads; parallel > threads {
		parallel = threads
	}
	makespan := srv.VirtualTime().Seconds() / float64(parallel)
	return float64(clients*perClient) / makespan / 1e6
}

// coalescedVMQPS serves the same load through a Coalescer: each client
// pipelines its lookups as async Submits (a real pipelined client keeps
// many requests in flight) and drains the replies. The coalesced
// batches run the heterogeneous 4-step pipeline back to back, so the
// makespan is the accumulated batch virtual time.
func coalescedVMQPS(tb testing.TB, srv *hbtree.Server[uint64], pairs []hbtree.Pair[uint64], clients, perClient int) float64 {
	tb.Helper()
	srv.ResetMetrics()
	// Shards is pinned to 1: the virtual-clock comparison measures the
	// batching discipline itself, so batch formation is kept
	// deterministic (one queue, bucket-sized flushes).
	co := srv.Coalesce(hbtree.CoalescerOptions{MaxBatch: serveBatch, Window: serveBenchWindow, Shards: 1})
	defer co.Close()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			replies := make([]<-chan serve.Result[uint64], perClient)
			for i := range replies {
				k := pairs[(c*perClient+i*31)%len(pairs)].Key
				replies[i] = co.Submit(k)
			}
			for i, ch := range replies {
				res := <-ch
				if res.Err != nil || !res.Found {
					tb.Errorf("coalesced request %d: found=%v err=%v", i, res.Found, res.Err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	makespan := srv.VirtualTime().Seconds()
	return float64(clients*perClient) / makespan / 1e6
}

// TestCoalescedBeatsPerRequestAt4Clients is the serving layer's
// acceptance criterion: with ≥4 concurrent clients, coalesced batch
// serving must out-throughput per-request descents on the virtual
// clock.
func TestCoalescedBeatsPerRequestAt4Clients(t *testing.T) {
	srv, pairs := newServeBenchServer(t)
	perClient := servePerClient
	if testing.Short() {
		perClient /= 4
	}
	per := perRequestVMQPS(t, srv, pairs, 4, perClient)
	coal := coalescedVMQPS(t, srv, pairs, 4, perClient)
	t.Logf("4 clients: per-request %.1f vMQPS, coalesced %.1f vMQPS (%.1fx)", per, coal, coal/per)
	if coal <= per {
		t.Fatalf("coalesced serving (%.1f vMQPS) did not beat per-request (%.1f vMQPS) at 4 clients", coal, per)
	}
}

// BenchmarkServeThroughput reports the virtual serving throughput of
// both paths at 1, 4 and 16 concurrent clients.
func BenchmarkServeThroughput(b *testing.B) {
	srv, pairs := newServeBenchServer(b)
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("per-request/clients=%d", clients), func(b *testing.B) {
			var mqps float64
			for i := 0; i < b.N; i++ {
				mqps = perRequestVMQPS(b, srv, pairs, clients, servePerClient)
			}
			b.ReportMetric(mqps, "vMQPS")
		})
		b.Run(fmt.Sprintf("coalesced/clients=%d", clients), func(b *testing.B) {
			var mqps float64
			for i := 0; i < b.N; i++ {
				mqps = coalescedVMQPS(b, srv, pairs, clients, servePerClient)
			}
			b.ReportMetric(mqps, "vMQPS")
		})
	}
}
