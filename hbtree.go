// Package hbtree is a Go reproduction of the HB+-tree — "A Hybrid
// B+-tree as Solution for In-Memory Indexing on CPU-GPU Heterogeneous
// Computing Platforms" (Shahvarani & Jacobsen, SIGMOD 2016) — together
// with every substrate the paper's evaluation depends on: the
// CPU-optimized implicit and regular B+-trees, the FAST baseline, a
// simulated CUDA-class GPU, a simulated virtual-memory subsystem, and
// the workload generators.
//
// The package is the public facade over internal/core. An HB+-tree
// stores 64-bit or 32-bit key-value pairs; its inner-node segment is
// mirrored into (simulated) GPU memory while the leaves stay in host
// memory, and batch lookups run the heterogeneous four-step search of
// the paper — H2D copy, GPU inner traversal, D2H copy, CPU leaf search —
// under sequential, pipelined or double-buffered bucket scheduling, with
// an optional load-balancing mode for CPU-strong machines.
//
// All algorithms execute functionally (results are exact and tested);
// performance figures come from a calibrated virtual-time model of the
// paper's two evaluation machines, exposed as SearchStats.
//
// # Concurrency
//
// A bare Tree is safe for any number of concurrent readers (Lookup,
// LookupBatch, RangeQuery, cursors, Stats) but must not be mutated —
// Update, Rebuild, MixedBatch, Close or the option setters — while any
// other call is in flight. To share a tree between goroutines that also
// write, wrap it with NewServer, which enforces the reader/writer
// contract with a lock, or use Tree.Coalesced to additionally merge
// concurrent point lookups into the bucket-sized batch searches the
// heterogeneous pipeline is built for.
//
// Quickstart:
//
//	pairs := hbtree.GeneratePairs[uint64](1<<20, 42)
//	t, err := hbtree.New(pairs, hbtree.Options{})
//	if err != nil { ... }
//	defer t.Close()
//	values, found, stats, err := t.LookupBatch(queries)
package hbtree

import (
	"io"
	"sort"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/keys"
	"hbtree/internal/platform"
	"hbtree/internal/simd"
	"hbtree/internal/workload"
)

// Key constrains the supported key widths: uint64 or uint32, the two
// variants the paper evaluates.
type Key = keys.Key

// Pair is one key-value tuple.
type Pair[K Key] = keys.Pair[K]

// Options configures a tree; the zero value reproduces the paper's final
// configuration (machine M1, implicit variant, 16K buckets, double
// buffering, hierarchical SIMD node search, pipeline depth 16).
type Options = core.Options

// Variant selects the tree organisation.
type Variant = core.Variant

// Tree organisations.
const (
	// Implicit is the pointer-free array organisation: fastest search,
	// bulk-rebuild updates only.
	Implicit = core.Implicit
	// Regular is the pointered organisation with incremental batch
	// updates.
	Regular = core.Regular
)

// Strategy selects the bucket-handling technique.
type Strategy = core.Strategy

// Bucket-handling strategies (Figure 10 of the paper).
const (
	Sequential     = core.Sequential
	Pipelined      = core.Pipelined
	DoubleBuffered = core.DoubleBuffered
)

// NodeSearch algorithms for the CPU side (Figure 8).
const (
	SearchSequential   = simd.Sequential
	SearchLinear       = simd.Linear
	SearchHierarchical = simd.Hierarchical
)

// Layout selects the implicit variant's inner-node geometry engine
// (Options.Layout).
type Layout = core.Layout

// Inner-node layouts.
const (
	// LayoutUniform is the classic geometry: every inner node is one
	// cache line / one coalesced device transaction wide.
	LayoutUniform = core.LayoutUniform
	// LayoutTuned lets the cost model widen root-side levels into
	// multi-line nodes sized for the batch quantum (Options.LayoutBatch),
	// trading amortised root lines for a shorter tree.
	LayoutTuned = core.LayoutTuned
)

// UpdateMethod selects how the regular tree keeps the GPU replica of its
// I-segment synchronised during batch updates (Section 5.6).
type UpdateMethod = core.UpdateMethod

// Update methods.
const (
	// AsyncParallel applies the batch with worker threads, then
	// re-transfers the whole I-segment. Best for large batches.
	AsyncParallel = core.AsyncParallel
	// AsyncSingle is the single-threaded asynchronous baseline.
	AsyncSingle = core.AsyncSingle
	// Synchronized streams each modified inner node to the GPU
	// concurrently with the modifying thread. Best for small batches.
	Synchronized = core.Synchronized
	// SynchronizedMT adds modifying threads to Synchronized.
	SynchronizedMT = core.SynchronizedMT
)

// Tree is a hybrid CPU-GPU B+-tree over K.
type Tree[K Key] struct {
	*core.Tree[K]
}

// SearchStats reports a batch lookup's virtual-time performance.
type SearchStats = core.SearchStats

// UpdateStats reports a batch update's outcome and virtual-time cost.
type UpdateStats = core.UpdateStats

// BuildStats reports construction cost (the Figure 15 phases).
type BuildStats = core.BuildStats

// Balance holds the load-balancing parameters (D, R) of Section 5.5.
type Balance = core.Balance

// Op is one update operation for the regular variant.
type Op[K Key] = cpubtree.Op[K]

// MachineM1 returns the primary evaluation platform model (Xeon E5-2665
// + GeForce GTX 780).
func MachineM1() platform.Machine { return platform.M1() }

// MachineM2 returns the secondary platform model (Core i7-4800MQ +
// GeForce GTX 770M), whose weaker GPU motivates load balancing.
func MachineM2() platform.Machine { return platform.M2() }

// New builds an HB+-tree from sorted, distinct pairs and mirrors its
// I-segment into the simulated GPU's memory. It fails when the pairs are
// not strictly increasing, when a key equals the reserved maximum value,
// or when the I-segment exceeds the GPU memory capacity.
func New[K Key](pairs []Pair[K], opt Options) (*Tree[K], error) {
	t, err := core.Build(pairs, opt)
	if err != nil {
		return nil, err
	}
	return &Tree[K]{t}, nil
}

// GeneratePairs returns n sorted, distinct, uniformly distributed
// key-value pairs — the paper's dataset generator (Section 6.1).
func GeneratePairs[K Key](n int, seed uint64) []Pair[K] {
	return workload.Dataset[K](workload.Uniform, n, seed)
}

// ShuffledQueries returns the dataset's keys in Knuth-shuffled order,
// the paper's point-query workload.
func ShuffledQueries[K Key](pairs []Pair[K], n int, seed uint64) []K {
	return workload.SearchInput(pairs, n, seed)
}

// ValueFor returns the canonical value GeneratePairs stores with a key,
// for verifying lookups.
func ValueFor[K Key](k K) K { return workload.ValueFor(k) }

// WriteTo serialises the tree's host-resident state to w; Load restores
// it. The GPU replica is rebuilt on load (one I-segment transfer), just
// as a process restart on real hardware would.
//
// The format is a versioned little-endian image of the node pools; it is
// independent of the machine model, which is supplied again at Load.
func Load[K Key](r io.Reader, opt Options) (*Tree[K], error) {
	t, err := core.Load[K](r, opt)
	if err != nil {
		return nil, err
	}
	return &Tree[K]{t}, nil
}

// Cursor is a forward iterator over stored pairs in key order; obtain
// one with Tree.Seek. Cursors are read-only and must not be used
// concurrently with updates.
type Cursor[K Key] = cpubtree.Cursor[K]

// NewFromUnsorted builds a tree from arbitrary pairs: they are sorted
// and de-duplicated (last write wins for duplicate keys) before the bulk
// load. Pairs with the reserved maximum key are rejected.
func NewFromUnsorted[K Key](pairs []Pair[K], opt Options) (*Tree[K], error) {
	sorted := append([]Pair[K](nil), pairs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	w := 0
	for i, p := range sorted {
		if i > 0 && p.Key == sorted[w-1].Key {
			sorted[w-1] = p // last write wins
			continue
		}
		sorted[w] = p
		w++
	}
	return New(sorted[:w], opt)
}
