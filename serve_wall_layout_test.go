// Wall-clock acceptance gate for the per-level layout engine. The tuned
// layout widens root-side inner levels into multi-line nodes sized for
// the coalesce window (see DESIGN §12): a 32-slot root spans four
// coalesced lines but collapses two one-line levels into one, so a
// sorted shared-descent batch pays the root's lines once per batch
// while every query saves a full level of dependent probes. The gate
// below runs the serving pipeline A/B — identical except for
// WallOptions.UniformLayout — and requires the tuned build to win on
// the deterministic metric (probe-weighted line bytes per lookup,
// counted by the device transaction counters) without losing on the
// noisy one (MQPS).
package hbtree_test

import (
	"runtime"
	"testing"
	"time"

	"hbtree"
	"hbtree/internal/serve"
)

// layoutPairs is sized so the tuner has a strict win to find: at 2^16
// pairs the uniform implicit tree has 16384 leaf lines and height 5,
// and widening the root to 32 slots removes a level (height 4) while
// the extra root lines amortise over a 256-query window — the
// expected probe-weighted cost drops from ~439.5 to ~435.5 lines per
// batch. (At 2^18 pairs the two costs happen to tie at this window,
// so the tuner correctly stays uniform and there is nothing to gate.)
const layoutPairs = 1 << 16

// TestWallTunedLayoutBeatsUniformAtWindow256 is the layout-engine
// acceptance criterion: with sorted shared-descent serving at a
// coalesce window of 256, the tuned layout must reduce the
// NodeProbes-weighted line bytes per lookup versus the uniform layout
// and must not lose MQPS. Line bytes are deterministic (they count
// device transactions, not time), so that side of the gate is strict;
// the MQPS side allows a small noise margin and, like the other wall
// throughput gates, only runs on ≥4-CPU hosts.
func TestWallTunedLayoutBeatsUniformAtWindow256(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs ≥4 CPUs for a stable throughput comparison, have %d", runtime.GOMAXPROCS(0))
	}
	pairs := hbtree.GeneratePairs[uint64](layoutPairs, 42)
	opt := serve.WallOptions{
		Clients:  8,
		Duration: time.Second,
		MaxBatch: 256,
	}
	uniformOpt := opt
	uniformOpt.UniformLayout = true
	uniform, err := serve.RunWall(pairs, hbtree.Options{}, uniformOpt)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := serve.RunWall(pairs, hbtree.Options{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("uniform: %s", uniform)
	t.Logf("tuned:   %s", tuned)

	if uniform.Layout != "uniform" {
		t.Fatalf("uniform arm reports layout %q", uniform.Layout)
	}
	if tuned.Layout != "tuned" {
		t.Fatalf("tuned arm reports layout %q", tuned.Layout)
	}
	// The tuner must actually have widened a level — if the cost model
	// found no win at this size the gate is vacuous and the sizing
	// comment above has rotted.
	wide := false
	for _, w := range tuned.LevelWidths {
		if w > 8 {
			wide = true
		}
	}
	if !wide {
		t.Fatalf("tuned arm kept uniform widths %v; gate needs a tree size where widening wins", tuned.LevelWidths)
	}
	if len(tuned.LevelWidths) >= len(uniform.LevelWidths) {
		t.Errorf("tuned tree height %d not below uniform %d: widths %v vs %v",
			len(tuned.LevelWidths), len(uniform.LevelWidths), tuned.LevelWidths, uniform.LevelWidths)
	}
	if uniform.Lookups == 0 || tuned.Lookups == 0 {
		t.Fatalf("empty run: uniform %d lookups, tuned %d", uniform.Lookups, tuned.Lookups)
	}
	if uniform.LineBytes <= 0 || tuned.LineBytes <= 0 {
		t.Fatalf("probe accounting missing: uniform %d line bytes, tuned %d", uniform.LineBytes, tuned.LineBytes)
	}
	// The strict, deterministic half of the gate: fewer probe-weighted
	// line bytes per served lookup.
	uniformBPL := float64(uniform.LineBytes) / float64(uniform.Lookups)
	tunedBPL := float64(tuned.LineBytes) / float64(tuned.Lookups)
	if tunedBPL >= uniformBPL {
		t.Errorf("tuned layout did not reduce probe line bytes: %.2f B/lookup vs uniform %.2f B/lookup",
			tunedBPL, uniformBPL)
	}
	// The noisy half: tuned must not lose throughput. 10% margin for
	// run-to-run scheduling noise on shared CI hosts; the expected
	// effect is a small win (one fewer dependent level per query).
	if tuned.MQPS < 0.9*uniform.MQPS {
		t.Errorf("tuned layout lost throughput: %.2f MQPS vs uniform %.2f MQPS", tuned.MQPS, uniform.MQPS)
	}
}
