package hbtree_test

import (
	"bytes"
	"fmt"

	"hbtree"
)

// ExampleNew demonstrates building an HB+-tree and running hybrid batch
// lookups.
func ExampleNew() {
	pairs := hbtree.GeneratePairs[uint64](1<<16, 42)
	tree, err := hbtree.New(pairs, hbtree.Options{})
	if err != nil {
		panic(err)
	}
	defer tree.Close()

	queries := hbtree.ShuffledQueries(pairs, 1<<14, 7)
	values, found, stats, err := tree.LookupBatch(queries)
	if err != nil {
		panic(err)
	}
	ok := 0
	for i := range queries {
		if found[i] && values[i] == hbtree.ValueFor(queries[i]) {
			ok++
		}
	}
	fmt.Printf("resolved %d/%d queries in %d buckets\n", ok, len(queries), stats.Buckets)
	// Output:
	// resolved 16384/16384 queries in 1 buckets
}

// ExampleTree_Update demonstrates batch updates on the regular variant
// with synchronized I-segment maintenance.
func ExampleTree_Update() {
	pairs := hbtree.GeneratePairs[uint64](1<<14, 1)
	tree, err := hbtree.New(pairs, hbtree.Options{Variant: hbtree.Regular, LeafFill: 0.8})
	if err != nil {
		panic(err)
	}
	defer tree.Close()

	ops := []hbtree.Op[uint64]{
		{Key: 1000, Value: 11},
		{Key: 2000, Value: 22},
		{Key: pairs[0].Key, Delete: true},
	}
	stats, err := tree.Update(ops, hbtree.Synchronized)
	if err != nil {
		panic(err)
	}
	v, _ := tree.Lookup(1000)
	_, stillThere := tree.Lookup(pairs[0].Key)
	fmt.Printf("applied %d ops; key 1000 -> %d; deleted key present: %v\n",
		stats.Applied, v, stillThere)
	// Output:
	// applied 3 ops; key 1000 -> 11; deleted key present: false
}

// ExampleTree_RangeQuery demonstrates ordered range scans.
func ExampleTree_RangeQuery() {
	pairs := []hbtree.Pair[uint64]{
		{Key: 10, Value: 1}, {Key: 20, Value: 2}, {Key: 30, Value: 3},
		{Key: 40, Value: 4}, {Key: 50, Value: 5},
	}
	tree, err := hbtree.New(pairs, hbtree.Options{})
	if err != nil {
		panic(err)
	}
	defer tree.Close()
	for _, p := range tree.RangeQuery(15, 3, nil) {
		fmt.Println(p.Key, p.Value)
	}
	// Output:
	// 20 2
	// 30 3
	// 40 4
}

// ExampleLoad demonstrates persisting and restoring a tree.
func ExampleLoad() {
	pairs := hbtree.GeneratePairs[uint64](1<<12, 5)
	tree, err := hbtree.New(pairs, hbtree.Options{})
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		panic(err)
	}
	tree.Close()

	restored, err := hbtree.Load[uint64](&buf, hbtree.Options{})
	if err != nil {
		panic(err)
	}
	defer restored.Close()
	v, found := restored.Lookup(pairs[100].Key)
	fmt.Println(found, v == pairs[100].Value)
	// Output:
	// true true
}
