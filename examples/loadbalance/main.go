// Load balancing: tuning the HB+-tree for a platform whose GPU is not
// powerful enough to absorb the whole inner traversal (the paper's M2,
// a laptop with a GeForce 770M; Section 5.5 and Figure 18).
//
// The example shows the problem and the cure: without balancing, the
// hybrid search on M2 runs slower than a plain CPU-optimized tree
// because the GPU is the bottleneck; the discovery algorithm
// (Algorithm 1) then finds how many top levels (D) and what bucket
// fraction (R) the CPU should pre-walk, and the balanced tree wins.
package main

import (
	"fmt"
	"log"

	"hbtree"
)

func main() {
	const n = 1 << 22
	pairs := hbtree.GeneratePairs[uint64](n, 3)
	queries := hbtree.ShuffledQueries(pairs, 1<<18, 9)

	m2 := hbtree.MachineM2()
	fmt.Printf("platform: %s (%s + %s)\n", m2.Name, m2.CPU.Name, m2.GPU.Name)

	// Unbalanced: every inner level goes to the GPU.
	plain, err := hbtree.New(pairs, hbtree.Options{Machine: m2})
	if err != nil {
		log.Fatal(err)
	}
	_, _, plainStats, err := plain.LookupBatch(queries)
	if err != nil {
		log.Fatal(err)
	}
	plain.Close()
	fmt.Printf("unbalanced HB+-tree:  %6.1f MQPS (the weak GPU is the bottleneck)\n",
		plainStats.ThroughputQPS/1e6)

	// Balanced: discovery picks D and R.
	balanced, err := hbtree.New(pairs, hbtree.Options{Machine: m2, LoadBalance: true})
	if err != nil {
		log.Fatal(err)
	}
	defer balanced.Close()
	b := balanced.Discover()
	fmt.Printf("discovery (Alg. 1):   CPU pre-walks D=%d levels for R=%.2f of each bucket (D+1 for the rest)\n",
		b.D, b.R)
	vals, found, balStats, err := balanced.LookupBatch(queries)
	if err != nil {
		log.Fatal(err)
	}
	for i, q := range queries {
		if !found[i] || vals[i] != hbtree.ValueFor(q) {
			log.Fatalf("balanced lookup %d wrong", i)
		}
	}
	fmt.Printf("balanced HB+-tree:    %6.1f MQPS (%.0f%% over unbalanced)\n",
		balStats.ThroughputQPS/1e6,
		(balStats.ThroughputQPS/plainStats.ThroughputQPS-1)*100)

	// Manual parameters are also possible, e.g. forcing maximum GPU load
	// back on:
	if err := balanced.SetBalance(hbtree.Balance{D: 0, R: 1}); err != nil {
		log.Fatal(err)
	}
	_, _, forced, err := balanced.LookupBatch(queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forced D=0, R=1:      %6.1f MQPS (back to GPU-bound)\n",
		forced.ThroughputQPS/1e6)
}
