// Range scans and skew: exercises the two remaining workload families of
// the paper's evaluation — range queries of varying selectivity
// (Figure 17) and skewed point-query distributions (Figure 12) — on one
// index, and demonstrates the 32-bit key variant.
package main

import (
	"fmt"
	"log"

	"hbtree"
	"hbtree/internal/workload"
)

func main() {
	const n = 1 << 21
	pairs := hbtree.GeneratePairs[uint64](n, 5)
	tree, err := hbtree.New(pairs, hbtree.Options{Variant: hbtree.Regular})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	// --- range queries of growing selectivity ------------------------
	fmt.Println("range queries (regular HB+-tree, big 256-entry leaves):")
	for _, matches := range []int{1, 8, 32} {
		rqs := workload.RangeQueries(pairs, 1000, matches, 11)
		total := 0
		for _, rq := range rqs {
			out := tree.RangeQuery(rq.Start, rq.Count, nil)
			if len(out) != rq.Count {
				log.Fatalf("range from %d returned %d of %d", rq.Start, len(out), rq.Count)
			}
			// Results are sorted and contiguous in the key order.
			for i := 1; i < len(out); i++ {
				if out[i-1].Key >= out[i].Key {
					log.Fatal("range result not sorted")
				}
			}
			total += len(out)
		}
		fmt.Printf("  %2d matches/query: %d queries returned %d pairs\n",
			matches, len(rqs), total)
	}

	// --- skewed point queries ----------------------------------------
	// Draws from each distribution pick dataset ranks, so every query
	// hits; Zipf concentrates on a handful of hot keys, which the tree
	// serves mostly from cache (the effect behind the paper's Figure 12).
	fmt.Println("skewed lookups (hybrid path, rank-addressed):")
	for _, d := range []workload.Distribution{workload.Uniform, workload.Zipf} {
		raw := workload.SkewedQueries[uint64](d, 1<<17, 13)
		qs := make([]uint64, len(raw))
		distinct := make(map[uint64]struct{})
		for i, r := range raw {
			k := pairs[int(float64(r)/float64(^uint64(0))*float64(n-1))].Key
			qs[i] = k
			distinct[k] = struct{}{}
		}
		_, found, stats, err := tree.LookupBatch(qs)
		if err != nil {
			log.Fatal(err)
		}
		for i := range found {
			if !found[i] {
				log.Fatalf("rank-addressed query %d missed", i)
			}
		}
		fmt.Printf("  %-8s %.1f MQPS, %d distinct keys across %d queries\n",
			d, stats.ThroughputQPS/1e6, len(distinct), len(qs))
	}

	// --- 32-bit key variant -------------------------------------------
	pairs32 := hbtree.GeneratePairs[uint32](1<<20, 21)
	tree32, err := hbtree.New(pairs32, hbtree.Options{Variant: hbtree.Implicit})
	if err != nil {
		log.Fatal(err)
	}
	defer tree32.Close()
	qs32 := hbtree.ShuffledQueries(pairs32, 1<<17, 23)
	vals, found, stats, err := tree32.LookupBatch(qs32)
	if err != nil {
		log.Fatal(err)
	}
	for i, q := range qs32 {
		if !found[i] || vals[i] != hbtree.ValueFor(q) {
			log.Fatalf("32-bit lookup %d wrong", i)
		}
	}
	fmt.Printf("32-bit variant: height %d (fanout 16 inner nodes), %.1f MQPS\n",
		tree32.Height(), stats.ThroughputQPS/1e6)
}
