// Framework: the paper's future-work direction of "a general leaf-stored
// tree processing framework using a CPU-GPU hybrid platform" (Section 7).
//
// The same generic engine searches two different leaf-stored structures
// hybrid-style — the HB+-layout implicit B+-tree and a CSS-tree (Rao &
// Ross), a structure the original system never supported — with nothing
// but their directory image and leaf-completion function as input. The
// engine mirrors the directory to (simulated) GPU memory, runs the
// warp-parallel traversal there, and derives its cost-model parameters
// from each tree's own geometry.
package main

import (
	"fmt"
	"log"

	"hbtree/internal/cpubtree"
	"hbtree/internal/csstree"
	"hbtree/internal/hybrid"
	"hbtree/internal/workload"
)

func main() {
	const n = 1 << 21
	pairs := workload.Dataset[uint64](workload.Uniform, n, 42)
	queries := workload.SearchInput(pairs, 1<<18, 7)

	run := func(name string, idx hybrid.Index[uint64]) {
		engine, err := hybrid.NewEngine(idx, hybrid.Options{})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		defer engine.Close()
		vals, found, stats, err := engine.LookupBatch(queries)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		for i, q := range queries {
			if !found[i] || vals[i] != workload.ValueFor(q) {
				log.Fatalf("%s: query %d wrong", name, i)
			}
		}
		c := engine.Device().Counters()
		fmt.Printf("%-22s %7.1f MQPS  latency %-10v  GPU transactions %d\n",
			name, stats.ThroughputQPS/1e6, stats.AvgLatency, c.Transactions)
	}

	// 1. The HB+-tree's own implicit B+-tree (GPU-safe fanout 8).
	bplus, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{Fanout: 8})
	if err != nil {
		log.Fatal(err)
	}
	run("implicit B+-tree", hybrid.WrapBPlus(bplus))

	// 2. A CSS-tree: an entirely different index, searched hybrid by the
	// same engine.
	css, err := csstree.Build(pairs, 0)
	if err != nil {
		log.Fatal(err)
	}
	run("CSS-tree (Rao&Ross)", hybrid.WrapCSS(css))

	// 3. The framework enforces the GPU constraint the paper derives in
	// Section 5.2: directories wider than the warp team are rejected.
	wide, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{}) // fanout 9
	if err != nil {
		log.Fatal(err)
	}
	if _, err := hybrid.NewEngine[uint64](hybrid.WrapBPlus(wide), hybrid.Options{}); err != nil {
		fmt.Printf("fanout-9 tree rejected as expected: %v\n", err)
	}
}
