// OLAP scenario: the paper's motivating use case — a lookup-intensive
// data-warehouse index whose updates arrive as periodic batches
// (Section 1: "lookup intensive applications where tree updates are
// performed through bulk update processing").
//
// The example runs a day of simulated warehouse activity against the
// regular HB+-tree: heavy point-query traffic interleaved with ETL-style
// update batches, picking the I-segment synchronisation method per batch
// size the way Section 5.6 prescribes — synchronized for small trickle
// batches, asynchronous (with one bulk I-segment transfer) for the large
// nightly load. It finishes by rebuilding an implicit HB+-tree from the
// final dataset, the organisation recommended for pure read service.
package main

import (
	"fmt"
	"log"
	"sort"

	"hbtree"
	"hbtree/internal/workload"
)

func main() {
	const n = 1 << 20
	pairs := hbtree.GeneratePairs[uint64](n, 1)

	// The serving index: regular variant with slack in its big leaves
	// so trickle updates rarely split.
	tree, err := hbtree.New(pairs, hbtree.Options{
		Variant:  hbtree.Regular,
		LeafFill: 0.8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()
	fmt.Printf("serving index: %d rows, height %d\n", tree.NumPairs(), tree.Height())

	oracle := make(map[uint64]uint64, n)
	for _, p := range pairs {
		oracle[p.Key] = p.Value
	}

	// --- daytime: query traffic + trickle updates --------------------
	for hour := 1; hour <= 3; hour++ {
		queries := hbtree.ShuffledQueries(pairs, 1<<17, uint64(hour))
		_, _, stats, err := tree.LookupBatch(queries)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hour %d: %d lookups at %.1f MQPS (simulated)\n",
			hour, stats.Queries, stats.ThroughputQPS/1e6)

		// A small trickle batch: the synchronized method streams each
		// modified inner node to the GPU replica, beating a full
		// I-segment transfer at this size.
		batch := makeBatch(oracle, 2048, uint64(100+hour))
		ust, err := tree.Update(batch, hbtree.Synchronized)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("         trickle batch: %d ops, %d structural, %d nodes re-synced, %s\n",
			ust.Ops, ust.Structural, ust.DirtyNodes, ust.Total())
	}

	// --- nightly load: one large asynchronous batch -------------------
	nightly := makeBatch(oracle, 1<<16, 999)
	ust, err := tree.Update(nightly, hbtree.AsyncParallel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nightly load: %d ops in %s (host %s + I-segment transfer %s)\n",
		ust.Ops, ust.Total(), ust.HostTime, ust.SyncTime)

	// Verify the index against the oracle after all updates.
	checked := 0
	for k, v := range oracle {
		got, ok := tree.Lookup(k)
		if !ok || got != v {
			log.Fatalf("audit failed: key %d -> (%d,%v), want %d", k, got, ok, v)
		}
		checked++
		if checked == 50000 {
			break
		}
	}
	fmt.Printf("audit: %d sampled rows verified against the oracle\n", checked)

	// --- read-only snapshot: rebuild as implicit ---------------------
	// For the morning's read-only reporting window, materialise an
	// implicit HB+-tree (higher search throughput, no update support).
	snapshot := make([]hbtree.Pair[uint64], 0, len(oracle))
	for k, v := range oracle {
		snapshot = append(snapshot, hbtree.Pair[uint64]{Key: k, Value: v})
	}
	sort.Slice(snapshot, func(i, j int) bool { return snapshot[i].Key < snapshot[j].Key })
	ro, err := hbtree.New(snapshot, hbtree.Options{Variant: hbtree.Implicit})
	if err != nil {
		log.Fatal(err)
	}
	defer ro.Close()
	bs := ro.BuildStats()
	fmt.Printf("read-only snapshot: %d rows rebuilt in %s (I-segment transfer %s, %.1f%% of total)\n",
		ro.NumPairs(), bs.Total(), bs.ISegXfer,
		bs.ISegXfer.Seconds()/bs.Total().Seconds()*100)

	queries := hbtree.ShuffledQueries(snapshot, 1<<17, 77)
	_, _, stats, err := ro.LookupBatch(queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reporting window: %.1f MQPS on the implicit snapshot\n", stats.ThroughputQPS/1e6)
}

// makeBatch builds an update batch (70% inserts / 30% deletes) and
// applies it to the oracle.
func makeBatch(oracle map[uint64]uint64, n int, seed uint64) []hbtree.Op[uint64] {
	r := workload.NewRNG(seed)
	keysList := make([]uint64, 0, len(oracle))
	for k := range oracle {
		keysList = append(keysList, k)
		if len(keysList) == 4*n {
			break
		}
	}
	ops := make([]hbtree.Op[uint64], 0, n)
	for len(ops) < n {
		if r.Intn(10) < 3 && len(keysList) > 0 {
			k := keysList[r.Intn(len(keysList))]
			if _, ok := oracle[k]; !ok {
				continue
			}
			delete(oracle, k)
			ops = append(ops, hbtree.Op[uint64]{Key: k, Delete: true})
			continue
		}
		k := r.Uint64()
		if k == ^uint64(0) {
			k--
		}
		if _, dup := oracle[k]; dup {
			continue
		}
		v := hbtree.ValueFor(k)
		oracle[k] = v
		ops = append(ops, hbtree.Op[uint64]{Key: k, Value: v})
	}
	return ops
}
