// Quickstart: build an HB+-tree, run a batch of point lookups through
// the hybrid CPU-GPU search path, and print the simulated performance
// figures.
package main

import (
	"fmt"
	"log"

	"hbtree"
)

func main() {
	// 1. A synthetic dataset: one million sorted, distinct key-value
	// pairs, uniformly distributed (the paper's workload).
	const n = 1 << 20
	pairs := hbtree.GeneratePairs[uint64](n, 42)

	// 2. Build the tree. The zero Options reproduce the paper's final
	// configuration: machine M1 (Xeon E5-2665 + GTX 780), implicit
	// variant, 16K buckets, double buffering.
	tree, err := hbtree.New(pairs, hbtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	st := tree.Stats()
	fmt.Printf("tree: %d pairs, height %d, I-segment %.1f MiB (mirrored to GPU), L-segment %.1f MiB (host only)\n",
		st.NumPairs, st.Height,
		float64(st.InnerBytes)/(1<<20), float64(st.LeafBytes)/(1<<20))

	// 3. The search workload: the dataset's keys in Knuth-shuffled
	// order, so every query hits.
	queries := hbtree.ShuffledQueries(pairs, 1<<18, 7)

	// 4. Hybrid batch lookup: buckets of 16K queries flow through
	// H2D copy -> GPU inner traversal -> D2H copy -> CPU leaf search.
	values, found, stats, err := tree.LookupBatch(queries)
	if err != nil {
		log.Fatal(err)
	}
	for i, q := range queries {
		if !found[i] || values[i] != hbtree.ValueFor(q) {
			log.Fatalf("lookup %d of key %d returned (%d, %v)", i, q, values[i], found[i])
		}
	}
	fmt.Printf("resolved %d queries in %d buckets\n", stats.Queries, stats.Buckets)
	fmt.Printf("simulated throughput: %.1f MQPS, latency: %s\n",
		stats.ThroughputQPS/1e6, stats.AvgLatency)
	fmt.Printf("stage times per bucket: H2D %s | GPU %s | D2H %s | CPU %s\n",
		stats.T1, stats.T2, stats.T3, stats.T4)

	// 5. A single lookup and a range scan also work without batching
	// (they run on the CPU path).
	v, ok := tree.Lookup(pairs[123].Key)
	fmt.Printf("point lookup: key %d -> value %d (found=%v)\n", pairs[123].Key, v, ok)
	rng := tree.RangeQuery(pairs[1000].Key, 5, nil)
	fmt.Printf("range scan from key %d: %d pairs, first value %d\n",
		pairs[1000].Key, len(rng), rng[0].Value)
}
