package hbtree_test

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"

	"hbtree"
	"hbtree/internal/simd"
)

// Fuzz targets for the security-sensitive surfaces: the node-search
// kernels (index arithmetic) and the snapshot decoder (untrusted bytes).
// The seed corpus runs under plain `go test`; `go test -fuzz=Fuzz...`
// explores further.

func FuzzNodeSearchKernels(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3), uint64(4), uint64(5), uint64(6), uint64(7), uint64(8), uint64(4))
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), uint64(1))
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i, q uint64) {
		line := []uint64{a, b, c, d, e, g, h, i}
		sort.Slice(line, func(x, y int) bool { return line[x] < line[y] })
		want := sort.Search(8, func(x int) bool { return q <= line[x] })
		if got := simd.SearchSequential(line, q); got != want {
			t.Fatalf("sequential: %d != %d", got, want)
		}
		if got := simd.SearchLinear(line, q); got != want {
			t.Fatalf("linear: %d != %d", got, want)
		}
		if got := simd.SearchHier8(line, q); got != want {
			t.Fatalf("hier: %d != %d", got, want)
		}
	})
}

func FuzzSnapshotDecoder(f *testing.F) {
	// Seed with a valid snapshot and a few mutations of it.
	pairs := hbtree.GeneratePairs[uint64](512, 1)
	tree, err := hbtree.New(pairs, hbtree.Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	tree.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(mut[8:], ^uint64(0))
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic or over-allocate; errors are fine. When the
		// decoder accepts the image, the tree must answer lookups
		// without crashing.
		lt, err := hbtree.Load[uint64](bytes.NewReader(data), hbtree.Options{})
		if err != nil {
			return
		}
		defer lt.Close()
		lt.Lookup(42)
		lt.RangeQuery(0, 4, nil)
	})
}
