// Wall-clock acceptance gate for adaptive admission (DESIGN §11):
// under a flash-crowd arrival spike, the latency-target controller
// must beat the static window it replaces on BOTH axes at once — hold
// the admitted-read p99 at or under the target through the spike, and
// complete at least as many lookups as the conservatively tuned static
// arm. The two arms replay identical seeded traffic through the same
// serialized flush stall (a host-independent capacity model), so the
// only difference is admission: a fixed 64-slot window in fail-fast
// mode versus the controller resizing its window online between
// MinPending and MaxPending. The static window is the degraded-mode
// tuning a deployment would pick to survive the spike, which makes it
// pay for the whole run; the controller only pays while flush spans
// actually approach the target. Below 4 CPUs the client goroutines,
// the flusher and the sampler share one core and client-observed
// latency measures the scheduler, not admission, so the gate skips
// there; the deterministic convergence oracles in internal/serve still
// run everywhere.
package hbtree_test

import (
	"runtime"
	"testing"
	"time"

	"hbtree"
	"hbtree/internal/serve"
)

func TestWallAdaptiveAdmissionBeatsStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs ≥4 CPUs for a stable latency comparison, have %d", runtime.GOMAXPROCS(0))
	}
	const target = 50 * time.Millisecond
	pairs := hbtree.GeneratePairs[uint64](1<<16, 42)
	base := serve.ScenarioOptions{
		Kind:        serve.ScenarioFlash,
		BaseClients: 2,
		PeakFactor:  8,
		Duration:    1500 * time.Millisecond,
		MaxBatch:    256,
		// 300µs serialized per flush pins capacity at ~850K lookups/s
		// regardless of how fast this host searches the tree.
		FlushStall: 300 * time.Microsecond,
		Seed:       42,
	}

	static := base
	static.MaxPending = 64 // the survive-the-spike static tuning
	staticRes, err := serve.RunWallScenario(pairs, hbtree.Options{}, static)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("static:   %s", staticRes)

	adaptive := base
	adaptive.MaxPending = 4096
	adaptive.MinPending = 16
	adaptive.TargetP99 = target
	adaptiveRes, err := serve.RunWallScenario(pairs, hbtree.Options{}, adaptive)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("adaptive: %s", adaptiveRes)

	// The arms must prove they ran different admission: the static one a
	// fixed window, the adaptive one the controller.
	if staticRes.AdmitMin != 64 || staticRes.AdmitMax != 64 {
		t.Errorf("static window moved: %d..%d", staticRes.AdmitMin, staticRes.AdmitMax)
	}
	if adaptiveRes.TargetP99 != target {
		t.Errorf("adaptive arm lost its target: %v", adaptiveRes.TargetP99)
	}

	// Latency: the controller holds the admitted-read p99 at or under
	// the target through the spike phase itself.
	spike := adaptiveRes.Phases[1]
	if spike.Lookups == 0 {
		t.Fatalf("adaptive spike phase admitted nothing: %+v", adaptiveRes)
	}
	if spike.P99 > target {
		t.Errorf("adaptive spike p99 %v exceeds the %v target", spike.P99, target)
	}

	// Throughput: holding the target must not cost completed work — the
	// controller admits at least as much as the static window that was
	// sized for the spike.
	if adaptiveRes.Lookups < staticRes.Lookups {
		t.Errorf("adaptive completed %d lookups, static %d — the controller lost throughput",
			adaptiveRes.Lookups, staticRes.Lookups)
	}
}
