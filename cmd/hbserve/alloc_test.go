package main

import (
	"bufio"
	"fmt"
	"io"
	"testing"
	"time"

	"hbtree"
)

// TestHandleLineGETAllocFree pins zero allocations per request on the
// full line-protocol hot path — tokenize, parse, lookup, encode — for
// the direct, coalesced and sharded GET routes (the sharded route adds
// the key-to-shard binary search, which must stay allocation-free). The
// small bucket size keeps the simulated kernel and the CPU leaf stage
// inline, matching the serving layer's own allocation regression tests.
func TestHandleLineGETAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	pairs := hbtree.GeneratePairs[uint64](1<<10, 42)
	for _, cfg := range []struct {
		name string
		cfg  serveConfig
	}{
		{"direct", serveConfig{}},
		{"coalesced", serveConfig{coalesce: true, window: 100 * time.Microsecond, maxBatch: 1}},
		{"sharded", serveConfig{shards: 4}},
		{"sharded-coalesced", serveConfig{shards: 4, coalesce: true, window: 100 * time.Microsecond, maxBatch: 1}},
		{"coalesced-bounded", serveConfig{coalesce: true, window: 100 * time.Microsecond, maxBatch: 1, maxPending: 256}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			tree, err := hbtree.New(pairs, hbtree.Options{BucketSize: 64})
			if err != nil {
				t.Fatal(err)
			}
			s := mustServer(t, tree, cfg.cfg)
			defer s.shutdown()
			w := bufio.NewWriter(io.Discard)
			line := fmt.Sprintf("GET %d", pairs[17].Key)

			// Warm the scratch, reply and batch pools.
			for i := 0; i < 32; i++ {
				if quit := s.handleLine(w, line); quit {
					t.Fatal("GET ended the session")
				}
				w.Flush()
			}
			allocs := testing.AllocsPerRun(200, func() {
				s.handleLine(w, line)
				w.Flush()
			})
			if allocs != 0 {
				t.Fatalf("GET allocates %.1f times per request, want 0", allocs)
			}
		})
	}
}
