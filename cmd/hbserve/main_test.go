package main

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hbtree"
	"hbtree/internal/fault"
)

// newTestTree builds a small dataset tree for protocol tests.
func newTestTree(t *testing.T, variant hbtree.Variant, seed uint64) (*hbtree.Tree[uint64], []hbtree.Pair[uint64]) {
	t.Helper()
	pairs := hbtree.GeneratePairs[uint64](1<<12, seed)
	tree, err := hbtree.New(pairs, hbtree.Options{Variant: variant})
	if err != nil {
		t.Fatal(err)
	}
	return tree, pairs
}

// mustServer is newServer or t.Fatal.
func mustServer(t *testing.T, tree *hbtree.Tree[uint64], cfg serveConfig) *server {
	t.Helper()
	s, err := newServer(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// startServer runs s.acceptLoop on an ephemeral listener and returns a
// dialer. The listener closes (and the loop exits) at test cleanup; the
// server itself is shut down there too.
func startServer(t *testing.T, s *server) func() (net.Conn, *bufio.Reader) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		s.acceptLoop(ln)
	}()
	t.Cleanup(func() {
		ln.Close()
		<-loopDone
		s.shutdown()
	})
	return func() (net.Conn, *bufio.Reader) {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		return conn, bufio.NewReader(conn)
	}
}

func sendLine(t *testing.T, conn net.Conn, r *bufio.Reader, line string) string {
	t.Helper()
	if _, err := fmt.Fprintln(conn, line); err != nil {
		t.Fatal(err)
	}
	resp, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(resp)
}

// TestServeProtocol drives the TCP protocol end-to-end against an
// in-process listener.
func TestServeProtocol(t *testing.T) {
	tree, pairs := newTestTree(t, hbtree.Implicit, 42)
	s := mustServer(t, tree, serveConfig{})
	dial := startServer(t, s)
	conn, r := dial()
	send := func(line string) string { return sendLine(t, conn, r, line) }

	// GET of an existing key.
	want := fmt.Sprintf("VALUE %d", pairs[10].Value)
	if got := send(fmt.Sprintf("GET %d", pairs[10].Key)); got != want {
		t.Fatalf("GET = %q, want %q", got, want)
	}
	// GET of a missing key.
	if got := send("GET 1"); got != "NOTFOUND" && !strings.HasPrefix(got, "VALUE") {
		t.Fatalf("GET missing = %q", got)
	}
	// Malformed requests.
	if got := send("GET"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("bad GET = %q", got)
	}
	if got := send("GET abc"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("non-numeric GET = %q", got)
	}
	if got := send("FLY"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("unknown cmd = %q", got)
	}
	// PUT/DEL are rejected on the implicit variant.
	if got := send("PUT 1 2"); !strings.Contains(got, "regular variant") {
		t.Fatalf("PUT on implicit = %q", got)
	}
	if got := send("DEL 1"); !strings.Contains(got, "regular variant") {
		t.Fatalf("DEL on implicit = %q", got)
	}
	// RANGE returns count pairs then END.
	if _, err := fmt.Fprintf(conn, "RANGE %d 3\n", pairs[0].Key); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		wantLine := fmt.Sprintf("PAIR %d %d", pairs[i].Key, pairs[i].Value)
		if strings.TrimSpace(line) != wantLine {
			t.Fatalf("RANGE line %d = %q, want %q", i, strings.TrimSpace(line), wantLine)
		}
	}
	if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "END" {
		t.Fatalf("RANGE terminator = %q", line)
	}
	// STATS mentions the pair count and the serving metrics.
	got := send("STATS")
	if !strings.Contains(got, fmt.Sprintf("pairs=%d", len(pairs))) || !strings.Contains(got, "lookups=") {
		t.Fatalf("STATS = %q", got)
	}
	// QUIT closes the session.
	if got := send("QUIT"); got != "BYE" {
		t.Fatalf("QUIT = %q", got)
	}
}

// TestPutDelProtocol exercises the write path on the regular variant:
// inserts become visible, deletes report NOTFOUND for absent keys, and
// the sentinel key is rejected.
func TestPutDelProtocol(t *testing.T) {
	tree, pairs := newTestTree(t, hbtree.Regular, 7)
	s := mustServer(t, tree, serveConfig{})
	dial := startServer(t, s)
	conn, r := dial()
	send := func(line string) string { return sendLine(t, conn, r, line) }

	// Overwrite an existing key and read it back.
	k := pairs[3].Key
	if got := send(fmt.Sprintf("PUT %d 999", k)); got != "OK" {
		t.Fatalf("PUT = %q", got)
	}
	if got := send(fmt.Sprintf("GET %d", k)); got != "VALUE 999" {
		t.Fatalf("GET after PUT = %q", got)
	}
	// Delete it; a second delete reports NOTFOUND.
	if got := send(fmt.Sprintf("DEL %d", k)); got != "OK" {
		t.Fatalf("DEL = %q", got)
	}
	if got := send(fmt.Sprintf("GET %d", k)); got != "NOTFOUND" {
		t.Fatalf("GET after DEL = %q", got)
	}
	if got := send(fmt.Sprintf("DEL %d", k)); got != "NOTFOUND" {
		t.Fatalf("second DEL = %q", got)
	}
	// Insert a brand-new key.
	if got := send("PUT 12345 678"); got != "OK" {
		t.Fatalf("PUT new = %q", got)
	}
	if got := send("GET 12345"); got != "VALUE 678" {
		t.Fatalf("GET new = %q", got)
	}
	// The sentinel (+infinity fence) key is rejected, not silently
	// dropped.
	if got := send(fmt.Sprintf("PUT %d 1", sentinelKey)); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("PUT sentinel = %q", got)
	}
	// Malformed writes.
	if got := send("PUT 1"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("short PUT = %q", got)
	}
	if got := send("DEL xyz"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("bad DEL = %q", got)
	}
	// The GPU replica stayed consistent through the updates.
	if err := s.srv.(*hbtree.Server[uint64]).Tree().VerifyReplica(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescedConnections runs concurrent client connections through
// the coalesced GET path and checks every reply plus that coalescing
// actually batched the requests.
func TestCoalescedConnections(t *testing.T) {
	tree, pairs := newTestTree(t, hbtree.Implicit, 3)
	s := mustServer(t, tree, serveConfig{coalesce: true, window: 200 * time.Microsecond, maxBatch: 64})
	dial := startServer(t, s)

	const clients, perClient = 4, 50
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		conn, r := dial()
		wg.Add(1)
		go func(c int, conn net.Conn, r *bufio.Reader) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				p := pairs[(c*perClient+i*13)%len(pairs)]
				if _, err := fmt.Fprintf(conn, "GET %d\n", p.Key); err != nil {
					errc <- err
					return
				}
				resp, err := r.ReadString('\n')
				if err != nil {
					errc <- err
					return
				}
				if want := fmt.Sprintf("VALUE %d", p.Value); strings.TrimSpace(resp) != want {
					errc <- fmt.Errorf("client %d: GET = %q, want %q", c, resp, want)
					return
				}
			}
		}(c, conn, r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	m := s.srv.Metrics()
	if m.BatchedQueries != clients*perClient {
		t.Fatalf("batched queries = %d, want %d", m.BatchedQueries, clients*perClient)
	}
	if m.Batches == 0 || m.Batches >= m.BatchedQueries {
		t.Fatalf("no coalescing happened: %d batches for %d queries", m.Batches, m.BatchedQueries)
	}
}

// scriptedListener feeds acceptLoop a fixed sequence of Accept results.
type scriptedListener struct {
	mu    sync.Mutex
	steps []func() (net.Conn, error)
}

func (l *scriptedListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.steps) == 0 {
		return nil, net.ErrClosed
	}
	step := l.steps[0]
	l.steps = l.steps[1:]
	return step()
}
func (l *scriptedListener) Close() error   { return nil }
func (l *scriptedListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4zero} }

// TestAcceptLoopRetries: transient Accept errors must not kill the
// server (the pre-refactor behaviour); the loop backs off, retries, and
// still serves the connection that arrives afterwards. A closed
// listener ends the loop cleanly.
func TestAcceptLoopRetries(t *testing.T) {
	tree, pairs := newTestTree(t, hbtree.Implicit, 11)
	s := mustServer(t, tree, serveConfig{})
	defer s.shutdown()

	client, srvConn := net.Pipe()
	transient := errors.New("accept: too many open files")
	ln := &scriptedListener{steps: []func() (net.Conn, error){
		func() (net.Conn, error) { return nil, transient },
		func() (net.Conn, error) { return nil, transient },
		func() (net.Conn, error) { return srvConn, nil },
	}}
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		s.acceptLoop(ln)
	}()

	// The connection handed out after two errors is served normally.
	r := bufio.NewReader(client)
	if _, err := fmt.Fprintf(client, "GET %d\n", pairs[0].Key); err != nil {
		t.Fatal(err)
	}
	resp, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("VALUE %d", pairs[0].Value); strings.TrimSpace(resp) != want {
		t.Fatalf("GET after transient errors = %q, want %q", resp, want)
	}
	client.Close()

	select {
	case <-loopDone: // script exhausted -> net.ErrClosed -> clean return
	case <-time.After(10 * time.Second):
		t.Fatal("acceptLoop did not exit on net.ErrClosed")
	}
}

// TestGracefulShutdown: closing the listener and calling shutdown
// drains open connections (they see EOF, not a stuck read), closes the
// coalescer, and returns.
func TestGracefulShutdown(t *testing.T) {
	tree, pairs := newTestTree(t, hbtree.Implicit, 5)
	s := mustServer(t, tree, serveConfig{coalesce: true, window: 100 * time.Microsecond, maxBatch: 32})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		s.acceptLoop(ln)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	if got := sendLine(t, conn, r, fmt.Sprintf("GET %d", pairs[1].Key)); got != fmt.Sprintf("VALUE %d", pairs[1].Value) {
		t.Fatalf("pre-shutdown GET = %q", got)
	}

	// Shut down exactly as main does: listener first, then drain.
	ln.Close()
	<-loopDone
	done := make(chan struct{})
	go func() {
		s.shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung")
	}
	// The tracked connection was closed: the client sees EOF.
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("connection still alive after shutdown")
	}
	conn.Close()
}

// TestSnapshotRoundTrip exercises -save/-load semantics through the
// library calls the flags invoke, plus the SCAN and DESCRIBE commands.
func TestSnapshotAndScan(t *testing.T) {
	pairs := hbtree.GeneratePairs[uint64](1<<12, 7)
	tree, err := hbtree.New(pairs, hbtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot to a temp file and restore.
	path := t.TempDir() + "/snap.hbt"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tree.Close()
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := hbtree.Load[uint64](rf, hbtree.Options{})
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Serve SCAN and DESCRIBE against the restored tree.
	s := mustServer(t, restored, serveConfig{})
	dial := startServer(t, s)
	conn, r := dial()

	fmt.Fprintf(conn, "SCAN %d 5\n", pairs[10].Key)
	for i := 0; i < 5; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("PAIR %d %d", pairs[10+i].Key, pairs[10+i].Value)
		if strings.TrimSpace(line) != want {
			t.Fatalf("SCAN line %d = %q, want %q", i, strings.TrimSpace(line), want)
		}
	}
	if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "END" {
		t.Fatalf("SCAN terminator %q", line)
	}

	fmt.Fprintln(conn, "DESCRIBE")
	sawTree := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(line, "HB+-tree") {
			sawTree = true
		}
		if strings.TrimSpace(line) == "END" {
			break
		}
	}
	if !sawTree {
		t.Fatal("DESCRIBE output missing tree header")
	}
}

// TestShardedProtocol drives the full protocol against the key-space
// sharded server: point reads route by key, writes land on the owning
// shard, RANGE stitches across shard boundaries, and STATS/SHARDSTATS
// report the per-shard layout.
func TestShardedProtocol(t *testing.T) {
	tree, pairs := newTestTree(t, hbtree.Regular, 9)
	s := mustServer(t, tree, serveConfig{shards: 4, coalesce: true, window: 100 * time.Microsecond, maxBatch: 32})
	if s.sharded == nil || s.sharded.Shards() != 4 {
		t.Fatal("sharded mode not active")
	}
	dial := startServer(t, s)
	conn, r := dial()
	send := func(line string) string { return sendLine(t, conn, r, line) }

	// Coalesced GETs route to the owning shard.
	for _, i := range []int{0, len(pairs) / 3, 2 * len(pairs) / 3, len(pairs) - 1} {
		want := fmt.Sprintf("VALUE %d", pairs[i].Value)
		if got := send(fmt.Sprintf("GET %d", pairs[i].Key)); got != want {
			t.Fatalf("GET pairs[%d] = %q, want %q", i, got, want)
		}
	}
	// Writes hit the owning shard's update pump and become visible.
	k := pairs[len(pairs)/2].Key
	if got := send(fmt.Sprintf("PUT %d 424242", k)); got != "OK" {
		t.Fatalf("PUT = %q", got)
	}
	if got := send(fmt.Sprintf("GET %d", k)); got != "VALUE 424242" {
		t.Fatalf("GET after PUT = %q", got)
	}
	if got := send(fmt.Sprintf("DEL %d", k)); got != "OK" {
		t.Fatalf("DEL = %q", got)
	}
	if got := send(fmt.Sprintf("GET %d", k)); got != "NOTFOUND" {
		t.Fatalf("GET after DEL = %q", got)
	}
	// RANGE starting before the last shard boundary and spanning past it
	// must stitch in key order. pairs is sorted, so compare directly
	// (skipping the deleted key).
	bounds := s.sharded.Bounds()
	var startIdx int
	for startIdx = range pairs {
		if pairs[startIdx].Key >= bounds[len(bounds)-1] {
			break
		}
	}
	startIdx -= 2 // two pairs before the boundary, crossing into the last shard
	if _, err := fmt.Fprintf(conn, "RANGE %d 5\n", pairs[startIdx].Key); err != nil {
		t.Fatal(err)
	}
	want := make([]string, 0, 5)
	for i := startIdx; len(want) < 5; i++ {
		if pairs[i].Key == k {
			continue
		}
		want = append(want, fmt.Sprintf("PAIR %d %d", pairs[i].Key, pairs[i].Value))
	}
	for i := 0; i < 5; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(line) != want[i] {
			t.Fatalf("stitched RANGE line %d = %q, want %q", i, strings.TrimSpace(line), want[i])
		}
	}
	if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "END" {
		t.Fatalf("RANGE terminator = %q", line)
	}
	// STATS aggregates across shards and reports the shard count.
	got := send("STATS")
	if !strings.Contains(got, "shards=4") || !strings.Contains(got, fmt.Sprintf("pairs=%d", len(pairs)-1)) {
		t.Fatalf("STATS = %q", got)
	}
	// SHARDSTATS lists one line per shard then END.
	if _, err := fmt.Fprintln(conn, "SHARDSTATS"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(line, fmt.Sprintf("SHARD %d ", i)) {
			t.Fatalf("SHARDSTATS line %d = %q", i, line)
		}
	}
	if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "END" {
		t.Fatalf("SHARDSTATS terminator = %q", line)
	}
}

// TestShardStatsNotSharded: SHARDSTATS on a single-tree server is a
// protocol error, not a panic.
func TestShardStatsNotSharded(t *testing.T) {
	tree, _ := newTestTree(t, hbtree.Implicit, 13)
	s := mustServer(t, tree, serveConfig{})
	dial := startServer(t, s)
	conn, r := dial()
	if got := sendLine(t, conn, r, "SHARDSTATS"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("SHARDSTATS unsharded = %q", got)
	}
}

// TestShutdownUnblocksParkedCoalescedGET: regression for the graceful
// drain hanging behind the coalescing window. A GET admitted to a
// batch whose deadline has not fired (lone request, one-hour window)
// leaves its connection handler parked inside the coalescer, and a
// closed client socket does not unpark it — only the coalescer's Close
// does. shutdown must therefore close the coalescer before waiting on
// the handlers, failing the parked read instead of waiting out the
// window.
func TestShutdownUnblocksParkedCoalescedGET(t *testing.T) {
	tree, pairs := newTestTree(t, hbtree.Implicit, 13)
	s := mustServer(t, tree, serveConfig{coalesce: true, window: time.Hour, maxBatch: 64})
	dial := startServer(t, s)
	conn, r := dial()
	if _, err := fmt.Fprintf(conn, "GET %d\n", pairs[0].Key); err != nil {
		t.Fatal(err)
	}
	// No reply can arrive before the hour-long window fires; give the
	// handler a moment to park inside the coalesced lookup.
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		s.shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung behind a parked coalesced GET")
	}
	// The parked read was failed, not served: the client sees the
	// shutdown error, or EOF if its conn was torn down first.
	if resp, err := r.ReadString('\n'); err == nil && strings.TrimSpace(resp) != "ERR CLOSED" {
		t.Fatalf("parked GET reply = %q", resp)
	}
}

// TestErrOverloadedCarriesRetryHint: with shed-mode admission control a
// refused GET answers the typed OVERLOADED code with a machine-readable
// retry-after hint instead of prose.
func TestErrOverloadedCarriesRetryHint(t *testing.T) {
	tree, pairs := newTestTree(t, hbtree.Implicit, 13)
	s := mustServer(t, tree, serveConfig{
		coalesce: true, window: time.Hour, maxBatch: 64, maxPending: 1, shed: true,
	})
	dial := startServer(t, s)

	// First GET takes the lone admission slot and parks behind the
	// hour-long window; it is failed by the shutdown at cleanup.
	conn1, _ := dial()
	if _, err := fmt.Fprintf(conn1, "GET %d\n", pairs[0].Key); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	conn2, r2 := dial()
	got := sendLine(t, conn2, r2, fmt.Sprintf("GET %d", pairs[1].Key))
	if !strings.HasPrefix(got, "ERR OVERLOADED retry-after-ms=") {
		t.Fatalf("shed GET = %q", got)
	}
	if got := sendLine(t, conn2, r2, "STATS"); !strings.Contains(got, "shed=1") {
		t.Fatalf("STATS after shed = %q", got)
	}
}

// TestErrDeadlineOnParkedGET: with -deadline set, a GET parked behind a
// coalescing window that will not fire answers ERR DEADLINE when its
// budget expires — the client is never parked for the window.
func TestErrDeadlineOnParkedGET(t *testing.T) {
	tree, pairs := newTestTree(t, hbtree.Implicit, 13)
	const deadline = 100 * time.Millisecond
	s := mustServer(t, tree, serveConfig{
		coalesce: true, window: time.Hour, maxBatch: 64, deadline: deadline,
	})
	dial := startServer(t, s)
	conn, r := dial()

	start := time.Now()
	got := sendLine(t, conn, r, fmt.Sprintf("GET %d", pairs[0].Key))
	elapsed := time.Since(start)
	if got != "ERR DEADLINE" {
		t.Fatalf("parked GET with deadline = %q", got)
	}
	if elapsed > 10*deadline {
		t.Fatalf("deadline reply took %v with a %v budget", elapsed, deadline)
	}
	if got := sendLine(t, conn, r, "STATS"); !strings.Contains(got, "deadlines=1") {
		t.Fatalf("STATS after deadline = %q", got)
	}
}

// TestStatsDegradedModeFields: STATS exposes the degraded-mode counters
// and the breaker state even on a healthy server, so dashboards can
// scrape them unconditionally.
func TestStatsDegradedModeFields(t *testing.T) {
	tree, _ := newTestTree(t, hbtree.Implicit, 13)
	s := mustServer(t, tree, serveConfig{})
	dial := startServer(t, s)
	conn, r := dial()
	got := sendLine(t, conn, r, "STATS")
	for _, field := range []string{
		"gpufaults=0", "retries=0", "fallbacks=0", "fbqueries=0",
		"deadlines=0", "shed=0", "trips=0", "breaker=closed",
	} {
		if !strings.Contains(got, field) {
			t.Fatalf("STATS missing %q: %q", field, got)
		}
	}
}

// TestCoalescedGETSurvivesTotalKernelOutage: with every kernel launch
// failing, a coalesced GET is still answered correctly — the serving
// layer retries, trips the breaker and degrades to the CPU fallback,
// and the protocol never shows the client an error.
func TestCoalescedGETSurvivesTotalKernelOutage(t *testing.T) {
	tree, pairs := newTestTree(t, hbtree.Implicit, 13)
	tree.Device().SetInjector(fault.New(fault.Options{Seed: 7, Kernel: 1.0}))
	s := mustServer(t, tree, serveConfig{
		coalesce: true, window: time.Millisecond, maxBatch: 64,
	})
	dial := startServer(t, s)
	conn, r := dial()

	for i := 0; i < 8; i++ {
		p := pairs[(i*97)%len(pairs)]
		want := fmt.Sprintf("VALUE %d", p.Value)
		if got := sendLine(t, conn, r, fmt.Sprintf("GET %d", p.Key)); got != want {
			t.Fatalf("GET %d under outage = %q, want %q", p.Key, got, want)
		}
	}
	got := sendLine(t, conn, r, "STATS")
	if !strings.Contains(got, "breaker=open") || strings.Contains(got, "gpufaults=0 ") {
		t.Fatalf("STATS under outage = %q", got)
	}
}

// TestRebalanceProtocol drives the epoch and online-rebalance commands
// against the sharded server: EPOCH reports the registry epoch and
// table generation, REBALANCE SPLIT/MERGE retile the key space while
// the connection keeps serving, SCANC reads one atomic cross-shard
// cut, and the counters land in REBALANCE STATS and STATS.
func TestRebalanceProtocol(t *testing.T) {
	tree, pairs := newTestTree(t, hbtree.Regular, 9)
	s := mustServer(t, tree, serveConfig{shards: 4})
	dial := startServer(t, s)
	conn, r := dial()
	send := func(line string) string { return sendLine(t, conn, r, line) }

	if got := send("EPOCH"); !strings.HasPrefix(got, "EPOCH ") || !strings.Contains(got, "gen=1") || !strings.Contains(got, "shards=4") {
		t.Fatalf("EPOCH = %q", got)
	}
	if got := send("REBALANCE SPLIT 0"); got != "OK" {
		t.Fatalf("REBALANCE SPLIT = %q", got)
	}
	if got := send("EPOCH"); !strings.Contains(got, "gen=2") || !strings.Contains(got, "shards=5") {
		t.Fatalf("EPOCH after split = %q", got)
	}
	got := send("REBALANCE STATS")
	for _, field := range []string{"gen=2", "shards=5", "rebalances=1", "splits=1", "merges=0"} {
		if !strings.Contains(got, field) {
			t.Fatalf("REBALANCE STATS missing %q: %q", field, got)
		}
	}
	// A write through the post-split layout is acked and visible.
	k := pairs[3].Key
	if got := send(fmt.Sprintf("PUT %d 777", k)); got != "OK" {
		t.Fatalf("PUT after split = %q", got)
	}
	// SCANC streams the whole dataset from one pinned epoch, in order.
	if _, err := fmt.Fprintf(conn, "SCANC %d %d\n", pairs[0].Key, len(pairs)); err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		wantV := pairs[i].Value
		if pairs[i].Key == k {
			wantV = 777
		}
		if want := fmt.Sprintf("PAIR %d %d", pairs[i].Key, wantV); strings.TrimSpace(line) != want {
			t.Fatalf("SCANC line %d = %q, want %q", i, strings.TrimSpace(line), want)
		}
	}
	if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "END" {
		t.Fatalf("SCANC terminator = %q", line)
	}
	if got := send("REBALANCE MERGE 0"); got != "OK" {
		t.Fatalf("REBALANCE MERGE = %q", got)
	}
	if got := send("EPOCH"); !strings.Contains(got, "gen=3") || !strings.Contains(got, "shards=4") {
		t.Fatalf("EPOCH after merge = %q", got)
	}
	if got := send("REBALANCE SPLIT 99"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("out-of-range split = %q", got)
	}
	if got := send("REBALANCE NOPE"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("bad subcommand = %q", got)
	}
	if got := send("STATS"); !strings.Contains(got, "rebalances=2") {
		t.Fatalf("STATS rebalance counter: %q", got)
	}
}

// TestRebalanceNotSharded: the layout commands need a shard table.
func TestRebalanceNotSharded(t *testing.T) {
	tree, _ := newTestTree(t, hbtree.Regular, 8)
	s := mustServer(t, tree, serveConfig{})
	dial := startServer(t, s)
	conn, r := dial()
	if got := sendLine(t, conn, r, "REBALANCE STATS"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("REBALANCE unsharded = %q", got)
	}
	if got := sendLine(t, conn, r, "EPOCH"); !strings.HasPrefix(got, "EPOCH ") {
		t.Fatalf("EPOCH unsharded = %q", got)
	}
}

// TestAdaptiveRetryHintDynamic: with -target-p99 the adaptive admission
// path sheds without -coalesce-shed, the OVERLOADED reply carries the
// controller's computed retry hint, and STATS exposes the overload
// telemetry (windowed shed rate, live admission window, the target).
func TestAdaptiveRetryHintDynamic(t *testing.T) {
	tree, pairs := newTestTree(t, hbtree.Implicit, 13)
	s := mustServer(t, tree, serveConfig{
		coalesce: true, window: time.Hour, maxBatch: 64, maxPending: 1,
		targetP99: 20 * time.Millisecond,
	})
	dial := startServer(t, s)

	// First GET takes the lone admission slot and parks behind the
	// hour-long window; it is failed by the shutdown at cleanup.
	conn1, _ := dial()
	if _, err := fmt.Fprintf(conn1, "GET %d\n", pairs[0].Key); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	conn2, r2 := dial()
	got := sendLine(t, conn2, r2, fmt.Sprintf("GET %d", pairs[1].Key))
	if !strings.HasPrefix(got, "ERR OVERLOADED retry-after-ms=") {
		t.Fatalf("adaptive shed GET = %q", got)
	}
	ms, err := strconv.Atoi(strings.TrimPrefix(got, "ERR OVERLOADED retry-after-ms="))
	if err != nil || ms < 1 {
		t.Fatalf("retry hint not a positive integer: %q", got)
	}
	stats := sendLine(t, conn2, r2, "STATS")
	for _, field := range []string{"shed=1", "admit_window=1", "target_p99=20ms"} {
		if !strings.Contains(stats, field) {
			t.Fatalf("STATS missing %q: %q", field, stats)
		}
	}
	if strings.Contains(stats, "shed_rate=0.00") || !strings.Contains(stats, "shed_rate=") {
		t.Fatalf("STATS shed_rate not windowed-positive after shed: %q", stats)
	}
}

// TestStatsOverloadFieldsStatic: the overload telemetry fields are
// present (zeroed) on a plain static server, so dashboards can scrape
// them unconditionally.
func TestStatsOverloadFieldsStatic(t *testing.T) {
	tree, _ := newTestTree(t, hbtree.Implicit, 13)
	s := mustServer(t, tree, serveConfig{})
	dial := startServer(t, s)
	conn, r := dial()
	got := sendLine(t, conn, r, "STATS")
	for _, field := range []string{"shed_rate=0.00", "admit_window=0", "target_p99=0s"} {
		if !strings.Contains(got, field) {
			t.Fatalf("STATS missing %q: %q", field, got)
		}
	}
}

// TestShardStatsOverloadMirror: per-shard SHARDSTATS lines mirror the
// admission telemetry when the sharded coalescer is serving.
func TestShardStatsOverloadMirror(t *testing.T) {
	tree, _ := newTestTree(t, hbtree.Implicit, 13)
	s := mustServer(t, tree, serveConfig{
		coalesce: true, window: 100 * time.Microsecond, maxBatch: 64,
		maxPending: 8, shards: 2, targetP99: 50 * time.Millisecond,
	})
	dial := startServer(t, s)
	conn, r := dial()
	if _, err := fmt.Fprintln(conn, "SHARDSTATS"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		for _, field := range []string{" shed=0", " shed_rate=0.00", " admit_window=8"} {
			if !strings.Contains(line, field) {
				t.Fatalf("SHARDSTATS line %d missing %q: %q", i, field, line)
			}
		}
	}
	if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "END" {
		t.Fatalf("SHARDSTATS terminator = %q", line)
	}
}
