package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"strings"
	"testing"

	"hbtree"
)

// TestServeProtocol drives the TCP protocol end-to-end against an
// in-process listener.
func TestServeProtocol(t *testing.T) {
	pairs := hbtree.GeneratePairs[uint64](1<<12, 42)
	tree, err := hbtree.New(pairs, hbtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		serve(conn, tree)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(line string) string {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(resp)
	}

	// GET of an existing key.
	want := fmt.Sprintf("VALUE %d", pairs[10].Value)
	if got := send(fmt.Sprintf("GET %d", pairs[10].Key)); got != want {
		t.Fatalf("GET = %q, want %q", got, want)
	}
	// GET of a missing key.
	if got := send("GET 1"); got != "NOTFOUND" && !strings.HasPrefix(got, "VALUE") {
		t.Fatalf("GET missing = %q", got)
	}
	// Malformed requests.
	if got := send("GET"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("bad GET = %q", got)
	}
	if got := send("GET abc"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("non-numeric GET = %q", got)
	}
	if got := send("FLY"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("unknown cmd = %q", got)
	}
	// RANGE returns count pairs then END.
	if _, err := fmt.Fprintf(conn, "RANGE %d 3\n", pairs[0].Key); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		wantLine := fmt.Sprintf("PAIR %d %d", pairs[i].Key, pairs[i].Value)
		if strings.TrimSpace(line) != wantLine {
			t.Fatalf("RANGE line %d = %q, want %q", i, strings.TrimSpace(line), wantLine)
		}
	}
	if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "END" {
		t.Fatalf("RANGE terminator = %q", line)
	}
	// STATS mentions the pair count.
	if got := send("STATS"); !strings.Contains(got, fmt.Sprintf("pairs=%d", len(pairs))) {
		t.Fatalf("STATS = %q", got)
	}
	// QUIT closes the session.
	if got := send("QUIT"); got != "BYE" {
		t.Fatalf("QUIT = %q", got)
	}
}

// TestSnapshotRoundTrip exercises -save/-load semantics through the
// library calls the flags invoke, plus the SCAN and DESCRIBE commands.
func TestSnapshotAndScan(t *testing.T) {
	pairs := hbtree.GeneratePairs[uint64](1<<12, 7)
	tree, err := hbtree.New(pairs, hbtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot to a temp file and restore.
	path := t.TempDir() + "/snap.hbt"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tree.Close()
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := hbtree.Load[uint64](rf, hbtree.Options{})
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	// Serve SCAN and DESCRIBE against the restored tree.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		serve(conn, restored)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	fmt.Fprintf(conn, "SCAN %d 5\n", pairs[10].Key)
	for i := 0; i < 5; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("PAIR %d %d", pairs[10+i].Key, pairs[10+i].Value)
		if strings.TrimSpace(line) != want {
			t.Fatalf("SCAN line %d = %q, want %q", i, strings.TrimSpace(line), want)
		}
	}
	if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "END" {
		t.Fatalf("SCAN terminator %q", line)
	}

	fmt.Fprintln(conn, "DESCRIBE")
	sawTree := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(line, "HB+-tree") {
			sawTree = true
		}
		if strings.TrimSpace(line) == "END" {
			break
		}
	}
	if !sawTree {
		t.Fatal("DESCRIBE output missing tree header")
	}
}
