package main

import (
	"strings"
	"sync"
	"testing"

	"hbtree"
)

// fuzzServer lazily builds one small regular-variant server shared by
// all fuzz executions (building a tree per input would drown the
// fuzzer). Regular variant so PUT/DEL reach the real update path.
var (
	fuzzOnce sync.Once
	fuzzSrv  *server
)

func fuzzServerInit(f *testing.F) *server {
	f.Helper()
	fuzzOnce.Do(func() {
		pairs := hbtree.GeneratePairs[uint64](1<<10, 42)
		tree, err := hbtree.New(pairs, hbtree.Options{Variant: hbtree.Regular, BucketSize: 64})
		if err != nil {
			f.Fatal(err)
		}
		fuzzSrv, err = newServer(tree, serveConfig{})
		if err != nil {
			f.Fatal(err)
		}
	})
	return fuzzSrv
}

// FuzzServeProtocol feeds arbitrary lines to the protocol parser: it
// must never panic, empty input produces no reply, and every non-empty
// command produces a reply (ERR for anything malformed or unknown).
func FuzzServeProtocol(f *testing.F) {
	seeds := []string{
		"",
		"   ",
		"GET 5",
		"GET",
		"GET abc",
		"GET 18446744073709551615",
		"GET 99999999999999999999999999",
		"PUT 5 6",
		"PUT 5",
		"PUT 18446744073709551615 1",
		"PUT x y",
		"DEL 5",
		"DEL",
		"DEL -1",
		"RANGE 0 10",
		"RANGE 0 -1",
		"RANGE 0 9999999999",
		"RANGE",
		"SCAN 7 3",
		"SCAN 7",
		"SCAN a b",
		"SCANC 7 3",
		"RANGEC 0 10",
		"EPOCH",
		"REBALANCE STATS",
		"REBALANCE SPLIT 0",
		"REBALANCE MERGE 0",
		"REBALANCE SPLIT x",
		"REBALANCE",
		"DESCRIBE",
		"STATS",
		"SHARDSTATS",
		"QUIT",
		"quit",
		"FLY me to the moon",
		"\x00\x01\x02",
		"GET\t5",
		"PUT 1 2 3 4",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	srv := fuzzServerInit(f)
	f.Fuzz(func(t *testing.T, line string) {
		var sb strings.Builder
		quit := srv.handleLine(&sb, line)
		out := sb.String()

		fields := strings.Fields(line)
		if len(fields) == 0 {
			if out != "" {
				t.Fatalf("blank line %q produced output %q", line, out)
			}
			return
		}
		// Every real command line gets a reply.
		if out == "" {
			t.Fatalf("command %q produced no reply", line)
		}
		// Replies are line-terminated, so a pipelined client never
		// blocks waiting for a missing newline.
		if !strings.HasSuffix(out, "\n") {
			t.Fatalf("reply to %q not newline-terminated: %q", line, out)
		}
		cmd := strings.ToUpper(fields[0])
		switch cmd {
		case "GET", "PUT", "DEL", "RANGE", "SCAN", "SCANC", "RANGEC", "EPOCH",
			"REBALANCE", "DESCRIBE", "STATS", "SHARDSTATS", "QUIT":
			// Known commands reply per-protocol; checked by the unit
			// tests. Here only the no-panic/no-silence contract applies.
		default:
			if !strings.HasPrefix(out, "ERR") {
				t.Fatalf("unknown command %q got non-ERR reply %q", line, out)
			}
		}
		if quit && cmd != "QUIT" {
			t.Fatalf("line %q closed the session", line)
		}
	})
}
