// Command hbserve exposes an HB+-tree as a tiny line-oriented TCP
// key-value service — a minimal end-to-end integration of the index into
// a server, the kind of lookup-intensive deployment (OLAP, decision
// support) the paper targets.
//
// Protocol (one request per line):
//
//	GET <key>            -> VALUE <v> | NOTFOUND
//	RANGE <start> <n>    -> n lines "PAIR <k> <v>", then END
//	SCAN <start> <n>     -> like RANGE but streamed through a cursor
//	DESCRIBE             -> multi-line tree report, then END
//	STATS                -> tree geometry and device counters
//	QUIT                 -> closes the connection
//
// The server bulk-loads a synthetic uniform dataset at startup, or
// restores a snapshot written by -save via -load.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"

	"hbtree"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		n        = flag.Int("n", 1<<20, "tuples to bulk-load")
		seed     = flag.Uint64("seed", 42, "dataset seed")
		once     = flag.Bool("once", false, "serve a single connection and exit (for tests)")
		loadPath = flag.String("load", "", "restore the index from a snapshot file instead of bulk-loading")
		savePath = flag.String("save", "", "write a snapshot of the built index to this file and continue serving")
	)
	flag.Parse()

	var tree *hbtree.Tree[uint64]
	var err error
	if *loadPath != "" {
		f, ferr := os.Open(*loadPath)
		if ferr != nil {
			log.Fatalf("hbserve: open snapshot: %v", ferr)
		}
		tree, err = hbtree.Load[uint64](f, hbtree.Options{})
		f.Close()
		if err != nil {
			log.Fatalf("hbserve: load snapshot: %v", err)
		}
		log.Printf("hbserve: restored %d tuples from %s", tree.NumPairs(), *loadPath)
	} else {
		log.Printf("hbserve: loading %d tuples...", *n)
		pairs := hbtree.GeneratePairs[uint64](*n, *seed)
		tree, err = hbtree.New(pairs, hbtree.Options{})
		if err != nil {
			log.Fatalf("hbserve: build: %v", err)
		}
	}
	defer tree.Close()
	if *savePath != "" {
		f, ferr := os.Create(*savePath)
		if ferr != nil {
			log.Fatalf("hbserve: create snapshot: %v", ferr)
		}
		if _, err := tree.WriteTo(f); err != nil {
			log.Fatalf("hbserve: write snapshot: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("hbserve: close snapshot: %v", err)
		}
		log.Printf("hbserve: snapshot written to %s", *savePath)
	}
	st := tree.Stats()
	log.Printf("hbserve: height %d, I-segment %d bytes, L-segment %d bytes",
		st.Height, st.InnerBytes, st.LeafBytes)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("hbserve: listen: %v", err)
	}
	defer ln.Close()
	log.Printf("hbserve: listening on %s", ln.Addr())

	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("hbserve: accept: %v", err)
			return
		}
		if *once {
			serve(conn, tree)
			return
		}
		go serve(conn, tree)
	}
}

func serve(conn net.Conn, tree *hbtree.Tree[uint64]) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "GET":
			if len(fields) != 2 {
				fmt.Fprintln(w, "ERR usage: GET <key>")
				break
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintln(w, "ERR bad key")
				break
			}
			if v, ok := tree.Lookup(k); ok {
				fmt.Fprintf(w, "VALUE %d\n", v)
			} else {
				fmt.Fprintln(w, "NOTFOUND")
			}
		case "RANGE":
			if len(fields) != 3 {
				fmt.Fprintln(w, "ERR usage: RANGE <start> <n>")
				break
			}
			start, err1 := strconv.ParseUint(fields[1], 10, 64)
			count, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || count < 0 || count > 1<<20 {
				fmt.Fprintln(w, "ERR bad range")
				break
			}
			for _, p := range tree.RangeQuery(start, count, nil) {
				fmt.Fprintf(w, "PAIR %d %d\n", p.Key, p.Value)
			}
			fmt.Fprintln(w, "END")
		case "SCAN":
			if len(fields) != 3 {
				fmt.Fprintln(w, "ERR usage: SCAN <start> <n>")
				break
			}
			start, err1 := strconv.ParseUint(fields[1], 10, 64)
			count, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || count < 0 || count > 1<<20 {
				fmt.Fprintln(w, "ERR bad scan")
				break
			}
			cur := tree.Seek(start)
			for i := 0; i < count; i++ {
				p, ok := cur.Next()
				if !ok {
					break
				}
				fmt.Fprintf(w, "PAIR %d %d\n", p.Key, p.Value)
			}
			fmt.Fprintln(w, "END")
		case "DESCRIBE":
			fmt.Fprint(w, tree.Describe())
			fmt.Fprintln(w, "END")
		case "STATS":
			st := tree.Stats()
			c := tree.Device().Counters()
			fmt.Fprintf(w, "STATS pairs=%d height=%d iseg=%d lseg=%d h2d=%d d2h=%d kernels=%d\n",
				st.NumPairs, st.Height, st.InnerBytes, st.LeafBytes,
				c.BytesH2D, c.BytesD2H, c.Kernels)
		case "QUIT":
			fmt.Fprintln(w, "BYE")
			return
		default:
			fmt.Fprintln(w, "ERR unknown command")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}
