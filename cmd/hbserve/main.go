// Command hbserve exposes an HB+-tree as a tiny line-oriented TCP
// key-value service — a minimal end-to-end integration of the index into
// a server, the kind of lookup-intensive deployment (OLAP, decision
// support) the paper targets.
//
// Protocol (one request per line):
//
//	GET <key>            -> VALUE <v> | NOTFOUND
//	PUT <key> <value>    -> OK | ERR (regular variant only)
//	DEL <key>            -> OK | NOTFOUND | ERR (regular variant only)
//	RANGE <start> <n>    -> n lines "PAIR <k> <v>", then END
//	SCAN <start> <n>     -> like RANGE but streamed through a cursor
//	SCANC <start> <n>    -> SCAN from one atomic cross-shard cut (one pinned epoch)
//	RANGEC <start> <n>   -> RANGE from one atomic cross-shard cut
//	EPOCH                -> current snapshot epoch (and shard-table generation)
//	REBALANCE SPLIT <i>  -> split shard i at its median key online; OK | ERR
//	REBALANCE MERGE <i>  -> merge shards i and i+1 online; OK | ERR
//	REBALANCE STATS      -> epoch, table generation, split/merge counters
//	DESCRIBE             -> multi-line tree report, then END
//	STATS                -> tree geometry, device counters, serving metrics
//	SHARDSTATS           -> one "SHARD <i> ..." line per shard, then END
//	PERSIST              -> WAL/snapshot counters and recovery stats (-data-dir only)
//	SNAPSHOT             -> commit an epoch-aligned snapshot now; OK epoch=<e> | ERR
//	QUIT                 -> closes the connection
//
// Connections are served concurrently through the hbtree.Server
// reader/writer contract; with -coalesce, GETs from all connections are
// coalesced into bucket-sized heterogeneous batch searches (the paper's
// intended operating point), and -coalesce-pending bounds each window
// with backpressure or (-coalesce-shed) fail-fast shedding. -shards T
// replaces the single tree with a key-space sharded server: T trees,
// each with its own snapshot pointer and update pump, so writes clone
// 1/T of the data and rebuilds overlap. PUT/DEL drive the regular
// variant's batch update path through the per-mode writer discipline.
// SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight
// requests — including dispatched per-shard update jobs — before
// exiting.
//
// Failures map to machine-parseable ERR codes so clients can pick the
// right reaction (see README "Error codes"):
//
//	ERR OVERLOADED retry-after-ms=<n>   admission shed the request; retry after the hint
//	ERR DEADLINE                        the -deadline budget expired; retrying may help
//	ERR CLOSED                          the server is shutting down; do not retry here
//
// -deadline bounds each GET/PUT/DEL; -fault-* arm the deterministic
// GPU fault injector (kernel/transfer/allocation failure rates, reset
// bursts) so degraded-mode serving — circuit breaker, CPU-only
// fallback — can be exercised end to end against a live server.
//
// The server bulk-loads a synthetic uniform dataset at startup, or
// restores a snapshot written by -save via -load.
//
// -data-dir <dir> turns on the durability subsystem (DESIGN §8): every
// acked PUT/DEL is appended to a per-partition write-ahead log and
// group-commit fsynced (-fsync-interval) BEFORE the OK is written, and
// epoch-aligned snapshots (-snapshot-every, the SNAPSHOT command, and
// shutdown) bound the log so a restart bulk-loads the snapshot images
// and replays only the WAL tail. A dir holding a committed snapshot is
// recovered — its shard layout wins over -shards and the seed flags are
// ignored. -data-dir supersedes -load/-save (combining them is an
// error).
//
// -pprof <addr> serves net/http/pprof on a side listener (e.g.
// -pprof localhost:6060, then `go tool pprof
// http://localhost:6060/debug/pprof/profile`) for inspecting the
// serving hot path under live load.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
	"unicode"
	"unicode/utf8"

	"hbtree"
	"hbtree/internal/cpubtree"
	"hbtree/internal/fault"
	"hbtree/internal/gpusim"
)

// sentinelKey is the maximum key, reserved internally as the +infinity
// fence; the update path silently skips it, so the protocol rejects it.
const sentinelKey = ^uint64(0)

// joinInts renders an int slice as a comma-joined STATS field value
// ("none" when empty, so the key=value grammar never emits spaces).
func joinInts(xs []int) string {
	if len(xs) == 0 {
		return "none"
	}
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}

// maxCount bounds RANGE/SCAN result sizes.
const maxCount = 1 << 20

// backend is the serving surface the protocol handlers drive; the
// single-tree hbtree.Server and the key-space hbtree.ShardedServer
// both satisfy it, so every command works identically in either mode.
type backend interface {
	Lookup(uint64) (uint64, bool)
	Update([]hbtree.Op[uint64], hbtree.UpdateMethod) (hbtree.UpdateStats, error)
	UpdateCtx(context.Context, []hbtree.Op[uint64], hbtree.UpdateMethod) (hbtree.UpdateStats, error)
	RangeQuery(uint64, int) []hbtree.Pair[uint64]
	Scan(uint64, int) []hbtree.Pair[uint64]
	Describe() string
	Stats() cpubtree.Stats
	Metrics() hbtree.ServerMetrics
	DeviceCounters() gpusim.Counters
	Options() hbtree.Options
	LevelWidths() []int
	LayoutAdvice() []int
	Swaps() int64
	Epoch() uint64
	Close()
}

// coalescer is the coalesced-GET surface (single-tree Coalescer or the
// sharded per-shard group).
type coalescer interface {
	Lookup(uint64) (uint64, bool, error)
	LookupCtx(context.Context, uint64) (uint64, bool, error)
	Shed() int64
	ShedRate() float64
	AdmitWindow() int
	TargetP99() time.Duration
	NoteSpan(time.Duration)
	Deadlines() int64
	Folded() int64
	Close()
}

// server wires the serving layer to the TCP front end: all reads go
// through srv (and, when enabled, the coalescer), all writes through
// the per-mode writer discipline, and open connections are tracked for
// shutdown.
type server struct {
	srv     backend
	co      coalescer                        // nil when -coalesce is off
	shco    *hbtree.ShardedCoalescer[uint64] // non-nil when the coalescer is the sharded group (SHARDSTATS view)
	sharded *hbtree.ShardedServer[uint64]    // non-nil in sharded mode
	dur     *hbtree.Durable[uint64]          // non-nil with -data-dir; all writes route through it

	deadline      time.Duration // per-request budget for GET/PUT/DEL (0 = none)
	targetP99     time.Duration // adaptive admission target (0 = static)
	overloadReply string        // precomputed "ERR OVERLOADED retry-after-ms=<n>\n"

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// serveConfig selects the serving mode and its coalescing/admission
// parameters.
type serveConfig struct {
	coalesce   bool
	window     time.Duration
	maxBatch   int
	shards     int           // > 1 selects the key-space sharded server
	maxPending int           // coalescer admission window (0 = unbounded)
	shed       bool          // fail fast with ERR OVERLOADED instead of blocking
	unsorted   bool          // flush through the plain (unsorted) batch path
	deadline   time.Duration // per-request budget for GET/PUT/DEL (0 = none)
	targetP99  time.Duration // adaptive admission latency target (0 = static)
	minPending int           // adaptive window floor (0 = maxPending/64)
}

// newServerShell builds the connection-tracking shell shared by both
// serving constructors.
func newServerShell(cfg serveConfig) *server {
	s := &server{conns: make(map[net.Conn]struct{}), deadline: cfg.deadline, targetP99: cfg.targetP99}
	// A shed request was refused before queueing; the soonest the next
	// window can have room is one coalescing window away, so that is the
	// retry hint (floored at 1ms, the practical client-side resolution).
	retryMS := (cfg.window + time.Millisecond - 1) / time.Millisecond
	if retryMS < 1 {
		retryMS = 1
	}
	s.overloadReply = fmt.Sprintf("ERR OVERLOADED retry-after-ms=%d\n", retryMS)
	return s
}

func coalescerOptions(cfg serveConfig) hbtree.CoalescerOptions {
	return hbtree.CoalescerOptions{
		MaxBatch:   cfg.maxBatch,
		Window:     cfg.window,
		MaxPending: cfg.maxPending,
		Shed:       cfg.shed,
		Unsorted:   cfg.unsorted,
		TargetP99:  cfg.targetP99,
		MinPending: cfg.minPending,
	}
}

// newServer builds the serving stack for cfg. In sharded mode the
// tree's pairs are resharded across cfg.shards trees and the original
// tree is closed; the caller must not use it afterwards.
func newServer(tree *hbtree.Tree[uint64], cfg serveConfig) (*server, error) {
	s := newServerShell(cfg)
	coOpt := coalescerOptions(cfg)
	if cfg.shards > 1 {
		sh, err := tree.Sharded(cfg.shards)
		if err != nil {
			return nil, err
		}
		tree.Close()
		s.srv, s.sharded = sh, sh
		if cfg.coalesce {
			s.shco = sh.Coalesce(coOpt)
			s.co = s.shco
		}
		return s, nil
	}
	srv := hbtree.NewServer(tree)
	s.srv = srv
	if cfg.coalesce {
		s.co = srv.Coalesce(coOpt)
	}
	return s, nil
}

// newDurableServer builds the serving stack over an opened Durable
// (-data-dir): reads go to the wrapped server (and the coalescer when
// enabled), every write routes through the Durable's WAL-before-ack
// discipline.
func newDurableServer(dur *hbtree.Durable[uint64], cfg serveConfig) *server {
	s := newServerShell(cfg)
	s.dur = dur
	coOpt := coalescerOptions(cfg)
	if sh := dur.Sharded(); sh != nil {
		s.srv, s.sharded = sh, sh
		if cfg.coalesce {
			s.shco = sh.Coalesce(coOpt)
			s.co = s.shco
		}
		return s
	}
	srv := dur.Server()
	s.srv = srv
	if cfg.coalesce {
		s.co = srv.Coalesce(coOpt)
	}
	return s
}

// acceptLoop accepts until the listener is closed. Transient accept
// errors (EMFILE, ECONNABORTED, ...) are retried with exponential
// backoff instead of killing the server; net.ErrClosed means shutdown.
func (s *server) acceptLoop(ln net.Listener) {
	backoff := 5 * time.Millisecond
	const maxBackoff = time.Second
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			log.Printf("hbserve: accept: %v (retrying in %v)", err, backoff)
			time.Sleep(backoff)
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = 5 * time.Millisecond
		s.track(conn)
		go func() {
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

func (s *server) track(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.wg.Add(1)
}

func (s *server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.wg.Done()
}

// shutdown is the graceful drain, ordered so that a SIGINT arriving
// mid-write never drops an acked operation and never hangs on a parked
// read:
//
//  1. close every open connection — no new lines are read once each
//     handler finishes its current one;
//  2. close the coalescer — a handler parked inside a coalesced GET
//     (admitted to a batch whose deadline window has not fired) only
//     unblocks when the coalescer delivers or fails its request, so
//     Close must run before waiting on the handlers: parked reads fail
//     with ErrClosed instead of holding the drain for the rest of the
//     window. Writes never touch the coalescer, so this cannot fail an
//     acked PUT/DEL;
//  3. wait for the handlers — after wg.Wait() no handler is inside a
//     Lookup or Update, so every OK the client saw was fully applied;
//  4. close the serving backend — for the sharded server this blocks
//     until every per-shard update pump has drained its dispatched
//     jobs (a rebuild in flight on one shard completes and publishes
//     before the shard's snapshot is released).
func (s *server) shutdown() {
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if s.co != nil {
		s.co.Close()
	}
	s.wg.Wait()
	if s.dur != nil {
		// Durable first: a final snapshot commits while the server is
		// still alive, so a graceful shutdown restarts with zero replay.
		if err := s.dur.Close(); err != nil {
			log.Printf("hbserve: durable close: %v", err)
		}
	}
	s.srv.Close()
}

// Per-connection buffers are pooled so the steady state of a busy
// listener does not allocate per accept: the scanner's read buffer and
// the bufio.Writer are recycled across connections, and every
// handleLine call borrows a lineScratch for tokenizing and encoding.
var (
	writerPool  = sync.Pool{New: func() any { return bufio.NewWriterSize(io.Discard, 4<<10) }}
	scanBufPool = sync.Pool{New: func() any { b := make([]byte, 64<<10); return &b }}
)

func (s *server) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	bp := scanBufPool.Get().(*[]byte)
	// max == len(*bp): the scanner can never regrow the buffer, so the
	// pooled slice is exactly what comes back.
	sc.Buffer(*bp, len(*bp))
	defer scanBufPool.Put(bp)
	w := writerPool.Get().(*bufio.Writer)
	w.Reset(conn)
	defer func() {
		w.Reset(io.Discard) // drop the conn reference before pooling
		writerPool.Put(w)
	}()
	defer w.Flush()
	for sc.Scan() {
		quit := s.handleLine(w, sc.Text())
		if err := w.Flush(); err != nil || quit {
			return
		}
	}
}

// lineScratch holds the per-call tokenizing and encoding state of
// handleLine; pooling it keeps the GET hot path allocation-free.
type lineScratch struct {
	fields []string
	buf    []byte
}

var linePool = sync.Pool{New: func() any {
	return &lineScratch{fields: make([]string, 0, 8), buf: make([]byte, 0, 64)}
}}

// splitFields is strings.Fields into a reused slice: it appends the
// whitespace-separated fields of line to dst, allocating nothing when
// dst has capacity.
func splitFields(dst []string, line string) []string {
	i := 0
	for i < len(line) {
		r, w := utf8.DecodeRuneInString(line[i:])
		if unicode.IsSpace(r) {
			i += w
			continue
		}
		j := i
		for j < len(line) {
			r, w := utf8.DecodeRuneInString(line[j:])
			if unicode.IsSpace(r) {
				break
			}
			j += w
		}
		dst = append(dst, line[i:j])
		i = j
	}
	return dst
}

// cmdIs reports whether tok equals the ASCII-uppercase command name,
// ignoring ASCII case — the allocation-free replacement for
// strings.ToUpper dispatch.
func cmdIs(tok, upper string) bool {
	if len(tok) != len(upper) {
		return false
	}
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != upper[i] {
			return false
		}
	}
	return true
}

// writeUintLine encodes prefix + decimal(v) + newline through the
// scratch buffer: the reply encoder of the GET hot path.
func (ls *lineScratch) writeUintLine(w io.Writer, prefix string, v uint64) {
	b := append(ls.buf[:0], prefix...)
	b = strconv.AppendUint(b, v, 10)
	b = append(b, '\n')
	w.Write(b)
	ls.buf = b[:0]
}

// writePairLine encodes "PAIR <k> <v>\n" through the scratch buffer.
func (ls *lineScratch) writePairLine(w io.Writer, k, v uint64) {
	b := append(ls.buf[:0], "PAIR "...)
	b = strconv.AppendUint(b, k, 10)
	b = append(b, ' ')
	b = strconv.AppendUint(b, v, 10)
	b = append(b, '\n')
	w.Write(b)
	ls.buf = b[:0]
}

// handleLine executes one protocol line and writes the reply; it
// returns true when the session should end. Factored out of the
// connection loop so the fuzz target can drive the parser directly. The
// GET path — tokenize, parse, serve, encode — performs no allocations
// in steady state (pinned by TestHandleLineGETAllocFree); error paths
// may use fmt.
func (s *server) handleLine(w io.Writer, line string) (quit bool) {
	ls := linePool.Get().(*lineScratch)
	fields := splitFields(ls.fields[:0], line)
	ls.fields = fields
	defer func() {
		clear(ls.fields) // don't pin the line from the pool
		ls.fields = ls.fields[:0]
		linePool.Put(ls)
	}()
	if len(fields) == 0 {
		return false
	}
	cmd := fields[0]
	switch {
	case cmdIs(cmd, "GET"):
		if len(fields) != 2 {
			io.WriteString(w, "ERR usage: GET <key>\n")
			break
		}
		k, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			io.WriteString(w, "ERR bad key\n")
			break
		}
		var v uint64
		var ok bool
		if s.co != nil {
			if s.deadline > 0 {
				ctx, cancel := context.WithTimeout(context.Background(), s.deadline)
				v, ok, err = s.co.LookupCtx(ctx, k)
				cancel()
			} else {
				v, ok, err = s.co.Lookup(k)
			}
			if err != nil {
				io.WriteString(w, s.errReply(err))
				break
			}
		} else {
			v, ok = s.srv.Lookup(k)
		}
		if ok {
			ls.writeUintLine(w, "VALUE ", v)
		} else {
			io.WriteString(w, "NOTFOUND\n")
		}
	case cmdIs(cmd, "PUT"):
		if len(fields) != 3 {
			io.WriteString(w, "ERR usage: PUT <key> <value>\n")
			break
		}
		k, err1 := strconv.ParseUint(fields[1], 10, 64)
		v, err2 := strconv.ParseUint(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			io.WriteString(w, "ERR bad key or value\n")
			break
		}
		if !s.writable(w) {
			break
		}
		if k == sentinelKey {
			io.WriteString(w, "ERR key out of range\n")
			break
		}
		if _, err := s.update([]hbtree.Op[uint64]{{Key: k, Value: v}}); err != nil {
			s.writeUpdateErr(w, err)
			break
		}
		io.WriteString(w, "OK\n")
	case cmdIs(cmd, "DEL"):
		if len(fields) != 2 {
			io.WriteString(w, "ERR usage: DEL <key>\n")
			break
		}
		k, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			io.WriteString(w, "ERR bad key\n")
			break
		}
		if !s.writable(w) {
			break
		}
		st, err := s.update([]hbtree.Op[uint64]{{Key: k, Delete: true}})
		if err != nil {
			s.writeUpdateErr(w, err)
			break
		}
		if st.NotFound > 0 {
			io.WriteString(w, "NOTFOUND\n")
		} else {
			io.WriteString(w, "OK\n")
		}
	case cmdIs(cmd, "RANGE"):
		start, count, ok := parseRange(w, fields, "RANGE")
		if !ok {
			break
		}
		for _, p := range s.srv.RangeQuery(start, count) {
			ls.writePairLine(w, p.Key, p.Value)
		}
		io.WriteString(w, "END\n")
	case cmdIs(cmd, "SCAN"):
		start, count, ok := parseRange(w, fields, "SCAN")
		if !ok {
			break
		}
		for _, p := range s.srv.Scan(start, count) {
			ls.writePairLine(w, p.Key, p.Value)
		}
		io.WriteString(w, "END\n")
	case cmdIs(cmd, "SCANC"), cmdIs(cmd, "RANGEC"):
		name := "SCANC"
		if cmdIs(cmd, "RANGEC") {
			name = "RANGEC"
		}
		start, count, ok := parseRange(w, fields, name)
		if !ok {
			break
		}
		// On a single tree every read already serves from one snapshot;
		// the consistent variants only differ on the sharded server,
		// where they pin a single epoch across every shard.
		var out []hbtree.Pair[uint64]
		switch {
		case s.sharded != nil && name == "SCANC":
			out = s.sharded.ScanConsistent(start, count)
		case s.sharded != nil:
			out = s.sharded.RangeQueryConsistent(start, count)
		case name == "SCANC":
			out = s.srv.Scan(start, count)
		default:
			out = s.srv.RangeQuery(start, count)
		}
		for _, p := range out {
			ls.writePairLine(w, p.Key, p.Value)
		}
		io.WriteString(w, "END\n")
	case cmdIs(cmd, "EPOCH"):
		if s.sharded != nil {
			rs := s.sharded.RebalanceStats()
			fmt.Fprintf(w, "EPOCH %d gen=%d shards=%d\n", rs.Epoch, rs.TableGen, rs.Shards)
		} else {
			ls.writeUintLine(w, "EPOCH ", s.srv.Epoch())
		}
	case cmdIs(cmd, "REBALANCE"):
		s.handleRebalance(w, fields)
	case cmdIs(cmd, "DESCRIBE"):
		io.WriteString(w, s.srv.Describe())
		io.WriteString(w, "END\n")
	case cmdIs(cmd, "STATS"):
		st := s.srv.Stats()
		c := s.srv.DeviceCounters()
		m := s.srv.Metrics()
		shards := 1
		if s.sharded != nil {
			shards = s.sharded.Shards()
		}
		shed, deadlines, folded := int64(0), m.Deadlines, int64(0)
		shedRate, admitWindow, targetP99 := 0.0, 0, time.Duration(0)
		if s.co != nil {
			shed = s.co.Shed()
			deadlines += s.co.Deadlines()
			folded = s.co.Folded()
			shedRate = s.co.ShedRate()
			admitWindow = s.co.AdmitWindow()
			targetP99 = s.co.TargetP99()
		}
		var rebalances int64
		if s.sharded != nil {
			rebalances = s.sharded.RebalanceStats().Rebalances
		}
		fmt.Fprintf(w, "STATS pairs=%d height=%d iseg=%d lseg=%d h2d=%d d2h=%d kernels=%d lookups=%d batches=%d batched=%d updates=%d swaps=%d shards=%d vtime=%s gpufaults=%d retries=%d fallbacks=%d fbqueries=%d deadlines=%d shed=%d shed_rate=%.2f admit_window=%d target_p99=%s trips=%d breaker=%s epoch=%d repairs=%d rebalances=%d probes=%d saved=%d folded=%d inplace=%d clonefb=%d clonednodes=%d clonedbytes=%d layout=%s widths=%s advice=%s\n",
			st.NumPairs, st.Height, st.InnerBytes, st.LeafBytes,
			c.BytesH2D, c.BytesD2H, c.Kernels,
			m.Lookups, m.Batches, m.BatchedQueries, m.Updates, s.srv.Swaps(), shards, m.VirtualTime,
			m.GPUFaults, m.Retries, m.FallbackBatches, m.FallbackQueries,
			deadlines, shed, shedRate, admitWindow, targetP99, m.BreakerTrips, m.BreakerState,
			s.srv.Epoch(), m.Repairs, rebalances,
			m.NodeProbes, m.ProbesSaved, folded,
			m.InPlaceApplied, m.CloneFallbacks, m.ClonedNodes, m.ClonedBytes,
			s.srv.Options().Layout, joinInts(s.srv.LevelWidths()), joinInts(s.srv.LayoutAdvice()))
	case cmdIs(cmd, "SHARDSTATS"):
		if s.sharded == nil {
			io.WriteString(w, "ERR not sharded (-shards > 1)\n")
			break
		}
		bounds := s.sharded.Bounds()
		stats := s.sharded.ShardStats()
		metrics := s.sharded.ShardMetrics()
		for i := range stats {
			var lo uint64
			if i > 0 {
				lo = bounds[i-1]
			}
			fmt.Fprintf(w, "SHARD %d low=%d pairs=%d height=%d lookups=%d batched=%d updates=%d swaps=%d gpufaults=%d fallbacks=%d trips=%d breaker=%s",
				i, lo, stats[i].NumPairs, stats[i].Height,
				metrics[i].Lookups, metrics[i].BatchedQueries, metrics[i].Updates, metrics[i].Swaps,
				metrics[i].GPUFaults, metrics[i].FallbackBatches, metrics[i].BreakerTrips, metrics[i].BreakerState)
			if s.shco != nil {
				om := s.shco.GroupOverload(i)
				fmt.Fprintf(w, " shed=%d shed_rate=%.2f admit_window=%d", om.Shed, om.ShedRate, om.AdmitWindow)
			}
			io.WriteString(w, "\n")
		}
		io.WriteString(w, "END\n")
	case cmdIs(cmd, "PERSIST"):
		if s.dur == nil {
			io.WriteString(w, "ERR not durable (-data-dir)\n")
			break
		}
		pm := s.dur.Metrics()
		rs := s.dur.Recovery()
		fmt.Fprintf(w, "PERSIST appends=%d ops=%d syncs=%d walbytes=%d partitions=%d segments=%d truncated=%d snapshots=%d skips=%d lastsnap=%d barriers=%d snapfailures=%d recovered=%t snapepoch=%d tablegen=%d rshards=%d bulkloaded=%d replayed=%d replayedops=%d rbarriers=%d torntails=%d\n",
			pm.Appends, pm.AppendedOps, pm.Syncs, pm.WalBytes, pm.Partitions, pm.Segments,
			pm.Truncated, pm.Snapshots, pm.SnapshotSkips, pm.LastSnapshot, pm.Barriers, pm.SnapFailures,
			rs.Recovered, rs.SnapshotEpoch, rs.TableGen, rs.Shards, rs.BulkLoadedPairs,
			rs.ReplayedRecords, rs.ReplayedOps, rs.Barriers, rs.TornTails)
	case cmdIs(cmd, "SNAPSHOT"):
		if s.dur == nil {
			io.WriteString(w, "ERR not durable (-data-dir)\n")
			break
		}
		ep, err := s.dur.Snapshot()
		if err != nil {
			fmt.Fprintf(w, "ERR snapshot: %v\n", err)
			break
		}
		ls.writeUintLine(w, "OK epoch=", ep)
	case cmdIs(cmd, "QUIT"):
		io.WriteString(w, "BYE\n")
		return true
	default:
		io.WriteString(w, "ERR unknown command\n")
	}
	return false
}

// handleRebalance executes the REBALANCE subcommands against the
// sharded server: explicit online SPLIT/MERGE transitions and the
// STATS counters. Single-tree servers have no shard layout to retile.
func (s *server) handleRebalance(w io.Writer, fields []string) {
	if s.sharded == nil {
		io.WriteString(w, "ERR not sharded (-shards > 1)\n")
		return
	}
	if len(fields) < 2 {
		io.WriteString(w, "ERR usage: REBALANCE SPLIT <i> | MERGE <i> | STATS\n")
		return
	}
	sub := fields[1]
	switch {
	case cmdIs(sub, "STATS"):
		rs := s.sharded.RebalanceStats()
		fmt.Fprintf(w, "REBALANCE epoch=%d gen=%d shards=%d rebalances=%d splits=%d merges=%d last=%q\n",
			rs.Epoch, rs.TableGen, rs.Shards, rs.Rebalances, rs.Splits, rs.Merges, rs.Last)
	case cmdIs(sub, "SPLIT"), cmdIs(sub, "MERGE"):
		if len(fields) != 3 {
			fmt.Fprintf(w, "ERR usage: REBALANCE %s <shard>\n", strings.ToUpper(sub))
			return
		}
		i, err := strconv.Atoi(fields[2])
		if err != nil || i < 0 {
			io.WriteString(w, "ERR bad shard index\n")
			return
		}
		if cmdIs(sub, "SPLIT") {
			err = s.sharded.SplitShard(i)
		} else {
			err = s.sharded.MergeShards(i)
		}
		if err != nil {
			fmt.Fprintf(w, "ERR rebalance: %v\n", err)
			return
		}
		io.WriteString(w, "OK\n")
	default:
		io.WriteString(w, "ERR usage: REBALANCE SPLIT <i> | MERGE <i> | STATS\n")
	}
}

// errReply maps a serving-layer read error to its protocol code:
// OVERLOADED and DEADLINE invite a retry (immediately bounded by the
// hint, or with a larger budget), CLOSED does not.
func (s *server) errReply(err error) string {
	switch {
	case errors.Is(err, hbtree.ErrServerOverloaded):
		if s.targetP99 > 0 {
			var oe *hbtree.OverloadError
			if errors.As(err, &oe) {
				ms := oe.RetryAfter.Milliseconds()
				if ms < 1 {
					ms = 1
				}
				return fmt.Sprintf("ERR OVERLOADED retry-after-ms=%d\n", ms)
			}
		}
		return s.overloadReply
	case errors.Is(err, hbtree.ErrDeadlineExceeded):
		return "ERR DEADLINE\n"
	default:
		return "ERR CLOSED\n"
	}
}

// update runs one PUT/DEL batch under the per-request deadline. With
// -data-dir the batch flows through the Durable: it is WAL-appended and
// group-commit fsynced before it is applied, so the OK the client sees
// survives a crash.
func (s *server) update(ops []hbtree.Op[uint64]) (hbtree.UpdateStats, error) {
	// In single-tree mode the adaptive controller only sees lookup flush
	// spans; feed it update wall time too, so window sizing reflects the
	// writer's share of capacity. Sharded mode gets pump spans natively.
	if s.targetP99 > 0 && s.sharded == nil && s.co != nil {
		t0 := time.Now()
		defer func() { s.co.NoteSpan(time.Since(t0)) }()
	}
	if s.deadline <= 0 {
		if s.dur != nil {
			return s.dur.Update(ops, hbtree.Synchronized)
		}
		return s.srv.Update(ops, hbtree.Synchronized)
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.deadline)
	defer cancel()
	if s.dur != nil {
		return s.dur.UpdateCtx(ctx, ops, hbtree.Synchronized)
	}
	return s.srv.UpdateCtx(ctx, ops, hbtree.Synchronized)
}

// writeUpdateErr encodes a failed PUT/DEL: the typed DEADLINE code when
// the budget expired, otherwise the error text (a structural failure
// the client should see verbatim).
func (s *server) writeUpdateErr(w io.Writer, err error) {
	if errors.Is(err, hbtree.ErrDeadlineExceeded) {
		io.WriteString(w, "ERR DEADLINE\n")
		return
	}
	fmt.Fprintf(w, "ERR update: %v\n", err)
}

// writable gates PUT/DEL on the variant: only the regular organisation
// supports incremental batch updates (the implicit variant rebuilds).
func (s *server) writable(w io.Writer) bool {
	if s.srv.Options().Variant != hbtree.Regular {
		fmt.Fprintln(w, "ERR updates require the regular variant (-variant regular)")
		return false
	}
	return true
}

func parseRange(w io.Writer, fields []string, cmd string) (start uint64, count int, ok bool) {
	if len(fields) != 3 {
		fmt.Fprintf(w, "ERR usage: %s <start> <n>\n", cmd)
		return 0, 0, false
	}
	start, err1 := strconv.ParseUint(fields[1], 10, 64)
	count, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil || count < 0 || count > maxCount {
		fmt.Fprintf(w, "ERR bad %s\n", strings.ToLower(cmd))
		return 0, 0, false
	}
	return start, count, true
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		n         = flag.Int("n", 1<<20, "tuples to bulk-load")
		seed      = flag.Uint64("seed", 42, "dataset seed")
		once      = flag.Bool("once", false, "serve a single connection and exit (for tests)")
		variant   = flag.String("variant", "implicit", "tree organisation: implicit | regular (regular enables PUT/DEL)")
		leafFill  = flag.Float64("leaf-fill", 0, "regular-variant leaf occupancy at build, in (0,1]; <1 leaves per-leaf gaps so batched updates can apply in place (0 = full leaves, every batch clones)")
		coalesce  = flag.Bool("coalesce", false, "coalesce concurrent GETs into heterogeneous batch searches")
		window    = flag.Duration("coalesce-window", 100*time.Microsecond, "max time a GET waits for batch companions")
		maxBatch  = flag.Int("coalesce-batch", 0, "coalesced batch size (0 = the tree's bucket size)")
		pending   = flag.Int("coalesce-pending", 0, "max in-flight GETs per coalescer window (0 = unbounded)")
		shed      = flag.Bool("coalesce-shed", false, "past -coalesce-pending, fail GETs with ERR overloaded instead of blocking")
		targetP99 = flag.Duration("target-p99", 0, "adaptive admission: hold coalesced flush latency at this p99 target by resizing the pending window online (0 = static -coalesce-pending)")
		minPend   = flag.Int("coalesce-min", 0, "adaptive admission window floor (0 = -coalesce-pending/64)")
		unsorted  = flag.Bool("unsorted", false, "flush coalesced batches through the plain (unsorted) search path")
		uniform   = flag.Bool("uniform-layout", false, "build with the classic one-line-per-node geometry instead of the cost-model-tuned per-level layout (tuned is the default for coalesced sorted serving on the implicit variant)")
		shards    = flag.Int("shards", 1, "key-space shards, each with its own snapshot pointer and update pump (1 = single tree)")

		rebalance   = flag.Bool("rebalance", false, "start the online shard rebalancer: split hot shards / merge cold neighbours as the update stream skews (requires -shards > 1)")
		rbInterval  = flag.Duration("rebalance-interval", 100*time.Millisecond, "rebalance detector poll period")
		rbMinOps    = flag.Int64("rebalance-minops", 4096, "update volume a detector window must accumulate before acting")
		rbHot       = flag.Float64("rebalance-hot", 0.5, "split a shard once it absorbs more than this share of a window's updates")
		rbCold      = flag.Float64("rebalance-cold", 0.05, "merge an adjacent shard pair below this combined share (negative disables merging)")
		rbMaxShards = flag.Int("rebalance-max-shards", 0, "shard-count cap for splits (0 = twice the count at decision time)")
		loadPath    = flag.String("load", "", "restore the index from a snapshot file instead of bulk-loading")
		savePath    = flag.String("save", "", "write a snapshot of the built index to this file and continue serving")
		pprofTo     = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060)")

		dataDir   = flag.String("data-dir", "", "durable data directory (WAL + epoch-aligned snapshots); acked writes survive a crash")
		fsyncIv   = flag.Duration("fsync-interval", 2*time.Millisecond, "WAL group-commit window (0 = fsync every append inline)")
		snapEvery = flag.Duration("snapshot-every", 0, "background snapshot period (0 = snapshot only on SNAPSHOT and shutdown)")
		walParts  = flag.Int("wal-partitions", 0, "WAL partition count, fixed at first boot (0 = the shard count)")

		deadline = flag.Duration("deadline", 0, "per-request budget for GET/PUT/DEL; expiry answers ERR DEADLINE (0 = none)")

		fKernel   = flag.Float64("fault-kernel", 0, "injected kernel launch failure rate [0,1]")
		fH2D      = flag.Float64("fault-h2d", 0, "injected host-to-device transfer timeout rate [0,1]")
		fD2H      = flag.Float64("fault-d2h", 0, "injected device-to-host transfer timeout rate [0,1]")
		fOOM      = flag.Float64("fault-oom", 0, "injected device allocation failure rate [0,1]")
		fCorrupt  = flag.Float64("fault-corrupt", 0, "fraction of injected transfer faults reported as payload corruption [0,1]")
		fReset    = flag.Float64("fault-reset", 0, "per-operation probability of starting a device reset burst [0,1]")
		fResetOps = flag.Int("fault-reset-ops", 0, "reset burst length in device operations (0 = fault.DefaultResetOps)")
		fSeed     = flag.Uint64("fault-seed", 1, "fault injector PRNG seed (equal seeds replay equal fault sequences)")
	)
	flag.Parse()

	if *pprofTo != "" {
		go func() {
			// The default mux carries the net/http/pprof handlers.
			log.Printf("hbserve: pprof on http://%s/debug/pprof/", *pprofTo)
			if err := http.ListenAndServe(*pprofTo, nil); err != nil {
				log.Printf("hbserve: pprof: %v", err)
			}
		}()
	}

	opt := hbtree.Options{}
	switch *variant {
	case "implicit":
		opt.Variant = hbtree.Implicit
	case "regular":
		opt.Variant = hbtree.Regular
	default:
		log.Fatalf("hbserve: unknown -variant %q", *variant)
	}
	if *leafFill != 0 {
		if opt.Variant != hbtree.Regular {
			log.Fatalf("hbserve: -leaf-fill requires -variant regular")
		}
		opt.LeafFill = *leafFill
	}
	if opt.Variant == hbtree.Implicit && *coalesce && !*unsorted && !*uniform {
		// Tuned layouts pay off only when lookups arrive as sorted
		// shared-descent batches; per-request GETs and unsorted flushes
		// keep the uniform geometry.
		opt.Layout = hbtree.LayoutTuned
		opt.LayoutBatch = *maxBatch
	}

	cfg := serveConfig{
		coalesce:   *coalesce,
		window:     *window,
		maxBatch:   *maxBatch,
		shards:     *shards,
		maxPending: *pending,
		shed:       *shed,
		targetP99:  *targetP99,
		minPending: *minPend,
		unsorted:   *unsorted,
		deadline:   *deadline,
	}

	// All serving modes share one simulated device; keep the handle so
	// the fault injector can be armed after setup. Attaching only once
	// the stack is built keeps the bulk load, the sharded reshard and
	// recovery fault-free — faults exercise serving, not construction.
	var (
		s   *server
		dev *gpusim.Device
	)
	if *dataDir != "" {
		if *loadPath != "" || *savePath != "" {
			log.Fatalf("hbserve: -load/-save are superseded by -data-dir (its snapshots restore automatically)")
		}
		dur, err := hbtree.OpenDurable(hbtree.DurableOptions{
			Dir:           *dataDir,
			FsyncInterval: *fsyncIv,
			SnapshotEvery: *snapEvery,
			Partitions:    *walParts,
		}, opt, *shards, func() ([]hbtree.Pair[uint64], error) {
			log.Printf("hbserve: seeding %d tuples...", *n)
			return hbtree.GeneratePairs[uint64](*n, *seed), nil
		})
		if err != nil {
			log.Fatalf("hbserve: open durable: %v", err)
		}
		if rs := dur.Recovery(); rs.Recovered {
			log.Printf("hbserve: recovered %s: epoch=%d shards=%d bulkloaded=%d replayed=%d replayedops=%d barriers=%d torntails=%d",
				*dataDir, rs.SnapshotEpoch, rs.Shards, rs.BulkLoadedPairs,
				rs.ReplayedRecords, rs.ReplayedOps, rs.Barriers, rs.TornTails)
		} else {
			log.Printf("hbserve: initialised durable dir %s", *dataDir)
		}
		s = newDurableServer(dur, cfg)
		dev = dur.Device()
	} else {
		var tree *hbtree.Tree[uint64]
		var err error
		if *loadPath != "" {
			f, ferr := os.Open(*loadPath)
			if ferr != nil {
				log.Fatalf("hbserve: open snapshot: %v", ferr)
			}
			tree, err = hbtree.Load[uint64](f, opt)
			f.Close()
			if err != nil {
				log.Fatalf("hbserve: load snapshot: %v", err)
			}
			log.Printf("hbserve: restored %d tuples from %s", tree.NumPairs(), *loadPath)
		} else {
			log.Printf("hbserve: loading %d tuples...", *n)
			pairs := hbtree.GeneratePairs[uint64](*n, *seed)
			tree, err = hbtree.New(pairs, opt)
			if err != nil {
				log.Fatalf("hbserve: build: %v", err)
			}
		}
		if *savePath != "" {
			f, ferr := os.Create(*savePath)
			if ferr != nil {
				log.Fatalf("hbserve: create snapshot: %v", ferr)
			}
			if _, err := tree.WriteTo(f); err != nil {
				log.Fatalf("hbserve: write snapshot: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("hbserve: close snapshot: %v", err)
			}
			log.Printf("hbserve: snapshot written to %s", *savePath)
		}
		dev = tree.Device()
		s, err = newServer(tree, cfg)
		if err != nil {
			log.Fatalf("hbserve: serve setup: %v", err)
		}
	}
	st := s.srv.Stats()
	log.Printf("hbserve: height %d, I-segment %d bytes, L-segment %d bytes",
		st.Height, st.InnerBytes, st.LeafBytes)

	if *rebalance {
		if s.sharded == nil {
			log.Fatalf("hbserve: -rebalance requires -shards > 1")
		}
		s.sharded.StartRebalancer(hbtree.RebalanceOptions{
			HotFraction:  *rbHot,
			ColdFraction: *rbCold,
			MinOps:       *rbMinOps,
			MaxShards:    *rbMaxShards,
			Interval:     *rbInterval,
		})
		log.Printf("hbserve: online rebalancer armed (hot=%g cold=%g minops=%d maxshards=%d interval=%v)",
			*rbHot, *rbCold, *rbMinOps, *rbMaxShards, *rbInterval)
	}

	if fopt := (fault.Options{
		Seed:     *fSeed,
		Kernel:   *fKernel,
		H2D:      *fH2D,
		D2H:      *fD2H,
		OOM:      *fOOM,
		Corrupt:  *fCorrupt,
		Reset:    *fReset,
		ResetOps: *fResetOps,
	}); fopt.Kernel+fopt.H2D+fopt.D2H+fopt.OOM+fopt.Reset > 0 {
		dev.SetInjector(fault.New(fopt))
		log.Printf("hbserve: fault injection armed (kernel=%g h2d=%g d2h=%g oom=%g corrupt=%g reset=%g resetops=%d seed=%d)",
			fopt.Kernel, fopt.H2D, fopt.D2H, fopt.OOM, fopt.Corrupt, fopt.Reset, fopt.ResetOps, fopt.Seed)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("hbserve: listen: %v", err)
	}
	log.Printf("hbserve: listening on %s (variant=%s coalesce=%v shards=%d)", ln.Addr(), *variant, *coalesce, *shards)

	// SIGINT/SIGTERM close the listener; the accept loop then returns
	// and the graceful drain below runs.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("hbserve: %v: shutting down", sig)
		ln.Close()
	}()

	if *once {
		conn, err := ln.Accept()
		if err == nil {
			s.track(conn)
			func() { defer s.untrack(conn); s.serveConn(conn) }()
		}
		ln.Close()
	} else {
		s.acceptLoop(ln)
	}
	s.shutdown()
	log.Printf("hbserve: drained, bye")
}
