// Command hbbench regenerates the tables and figures of the paper's
// evaluation (Figures 7-21). Each experiment builds the required trees,
// executes the workload functionally on the simulated platform, and
// prints the same rows/series the paper plots.
//
// Usage:
//
//	hbbench -list
//	hbbench -run fig16 -machine M1 -sizes 1M,4M,16M -queries 524288
//	hbbench -run all -quick
//	hbbench -wall -clients 8 -update-frac 0.1 -wall-duration 2s
//
// Sizes accept K/M/G suffixes (powers of two).
//
// With -wall the command leaves the paper's virtual clock and measures
// the serving layer on the host's: pipelined clients drive lookups
// through the coalescer (plus an optional batched update mix) against
// the locked baseline, the snapshot fast path and — with -shards T —
// the key-space sharded server, reporting real MQPS, latency
// percentiles and per-shard swap/update counts.
// -cpuprofile/-memprofile capture pprof profiles of any mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"hbtree"
	"hbtree/internal/harness"
	"hbtree/internal/serve"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		run     = flag.String("run", "all", "experiment id (fig7..fig21) or 'all'")
		machine = flag.String("machine", "M1", "platform model: M1 or M2")
		sizes   = flag.String("sizes", "", "comma-separated dataset sizes (e.g. 1M,4M,16M)")
		queries = flag.Int("queries", 0, "search queries per measurement")
		seed    = flag.Uint64("seed", 42, "workload seed")
		quick   = flag.Bool("quick", false, "small sizes for a fast smoke run")
		format  = flag.String("format", "table", "output format: table or csv")

		wall       = flag.Bool("wall", false, "run the wall-clock serving benchmark instead of a paper experiment")
		wallN      = flag.Int("wall-n", 1<<20, "tuples in the wall-clock tree")
		wallDur    = flag.Duration("wall-duration", time.Second, "measurement length per configuration")
		clients    = flag.Int("clients", 8, "concurrent client goroutines (-wall)")
		updateFrac = flag.Float64("update-frac", 0, "fraction of client ops routed to batched updates (-wall; uses the regular variant)")
		rebuildEvr = flag.Duration("rebuild-every", 0, "rebuild the tree on this period (-wall; implicit variant)")
		wallShards = flag.Int("shards", 0, "also run the key-space sharded configuration with this many shards (-wall; 0 = skip)")
		updateSkew = flag.Float64("update-skew", 0, "fraction of updates drawn from the hottest key-space quarter (-wall)")
		rebalance  = flag.Bool("rebalance", false, "run the sharded configuration with the online rebalancer armed (-wall; requires -shards > 1)")
		coalesceB  = flag.Int("coalesce-batch", 0, "coalescer flush size (-wall; 0 = the 1024 default)")
		unsorted   = flag.Bool("unsorted", false, "serve every -wall configuration through the unsorted flush path (skips the sorted/unsorted A/B pair)")
		layout     = flag.String("layout", "tuned", "inner-node layout for -wall implicit runs: tuned (cost-model per-level widths) | uniform (classic one line per node)")
		noDelta    = flag.Bool("no-delta-leaves", false, "disable the in-place gapped-leaf update path in every -wall configuration (skips the delta/clone A/B pair)")
		scenario   = flag.String("wall-scenario", "", "overload scenario instead of the steady -wall mix: flash | diurnal | hot-shift (per-phase latency rows)")
		targetP99  = flag.Duration("target-p99", 0, "adaptive admission latency target (-wall / -wall-scenario; 0 = static admission)")
		minPend    = flag.Int("coalesce-min", 0, "adaptive admission window floor (0 = pending/64)")
		pending    = flag.Int("coalesce-pending", 0, "admission window ceiling (-wall / -wall-scenario; 0 = unbounded / scenario default)")
		staticAdm  = flag.Bool("static-admission", false, "force the static admission arm (A/B switch: overrides -target-p99 to 0)")
		flushStall = flag.Duration("flush-stall", 0, "serialized per-flush stall pinning coalescer capacity for reproducible overload runs")
		benchJSON  = flag.String("bench-json", "", "directory to write one machine-readable BENCH_<name>.json per -wall configuration")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbbench:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hbbench:", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hbbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hbbench:", err)
			}
		}()
	}

	if *wall {
		p := wallParams{
			n:            *wallN,
			seed:         *seed,
			clients:      *clients,
			dur:          *wallDur,
			updateFrac:   *updateFrac,
			rebuildEvery: *rebuildEvr,
			shards:       *wallShards,
			updateSkew:   *updateSkew,
			rebalance:    *rebalance,
			maxBatch:     *coalesceB,
			unsorted:     *unsorted,
			layout:       *layout,
			noDelta:      *noDelta,
			scenario:     *scenario,
			targetP99:    *targetP99,
			minPending:   *minPend,
			maxPending:   *pending,
			staticAdm:    *staticAdm,
			flushStall:   *flushStall,
			jsonDir:      *benchJSON,
		}
		if p.staticAdm {
			p.targetP99 = 0
		}
		if err := runWall(p); err != nil {
			fmt.Fprintln(os.Stderr, "hbbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range harness.IDs() {
			title, _ := harness.Describe(id)
			fmt.Printf("  %-6s  %s\n", id, title)
		}
		return
	}

	cfg := harness.Config{
		Machine: *machine,
		Queries: *queries,
		Seed:    *seed,
		Quick:   *quick,
	}
	if *sizes != "" {
		parsed, err := parseSizes(*sizes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbbench:", err)
			os.Exit(2)
		}
		cfg.Sizes = parsed
	}

	emit := func(tables []harness.Table) error {
		for i := range tables {
			if *format == "csv" {
				if err := tables[i].WriteCSV(os.Stdout); err != nil {
					return err
				}
				fmt.Println()
				continue
			}
			tables[i].Fprint(os.Stdout)
		}
		return nil
	}

	if *run == "all" {
		if *format == "csv" {
			for _, id := range harness.IDs() {
				tables, err := harness.Run(id, cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, "hbbench:", err)
					os.Exit(1)
				}
				if err := emit(tables); err != nil {
					fmt.Fprintln(os.Stderr, "hbbench:", err)
					os.Exit(1)
				}
			}
			return
		}
		if err := harness.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "hbbench:", err)
			os.Exit(1)
		}
		return
	}
	tables, err := harness.Run(*run, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbbench:", err)
		os.Exit(1)
	}
	if err := emit(tables); err != nil {
		fmt.Fprintln(os.Stderr, "hbbench:", err)
		os.Exit(1)
	}
}

// wallParams carries the -wall flag set into runWall.
type wallParams struct {
	n            int
	seed         uint64
	clients      int
	dur          time.Duration
	updateFrac   float64
	rebuildEvery time.Duration
	shards       int
	updateSkew   float64
	rebalance    bool
	maxBatch     int
	unsorted     bool
	layout       string
	noDelta      bool
	scenario     string
	targetP99    time.Duration
	minPending   int
	maxPending   int
	staticAdm    bool
	flushStall   time.Duration
	jsonDir      string
}

// benchRecord is the machine-readable form of one configuration's
// result, written as BENCH_<name>.json for CI gates and regression
// tracking.
type benchRecord struct {
	Name            string  `json:"name"`
	Unsorted        bool    `json:"unsorted"`
	Tuples          int     `json:"tuples"`
	Clients         int     `json:"clients"`
	MaxBatch        int     `json:"max_batch"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	ElapsedNs       int64   `json:"elapsed_ns"`
	Lookups         int64   `json:"lookups"`
	Updates         int64   `json:"updates"`
	MQPS            float64 `json:"mqps"`
	P50Ns           int64   `json:"p50_ns"`
	P95Ns           int64   `json:"p95_ns"`
	P99Ns           int64   `json:"p99_ns"`
	AllocsPerLookup float64 `json:"allocs_per_lookup"`
	Batches         int64   `json:"batches"`
	Folded          int64   `json:"folded"`
	NodeProbes      int64   `json:"node_probes"`
	ProbesSaved     int64   `json:"probes_saved"`

	// Layout names the inner-node geometry the run was built with
	// ("uniform" or "tuned"), LevelWidths is the realised per-level
	// key-slot table (root first), and LineBytes the probe-weighted
	// device-line traffic (NodeProbes × 64) — the layout A/B gate's
	// inputs.
	Layout      string `json:"layout,omitempty"`
	LevelWidths []int  `json:"level_widths,omitempty"`
	LineBytes   int64  `json:"line_bytes,omitempty"`
	Shards          int     `json:"shards,omitempty"`

	// Write-path accounting (non-zero only with -update-frac > 0).
	NoDeltaLeaves   bool    `json:"no_delta_leaves,omitempty"`
	UpdateMQPS      float64 `json:"update_mqps,omitempty"`
	InPlaceBatches  int64   `json:"in_place_batches,omitempty"`
	CloneFallbacks  int64   `json:"clone_fallbacks,omitempty"`
	ClonedNodes     int64   `json:"cloned_nodes,omitempty"`
	ClonedBytes     int64   `json:"cloned_bytes,omitempty"`
	DuringWriteP99N int64   `json:"during_write_p99_ns,omitempty"`

	// Admission-control telemetry (non-zero only with shedding or an
	// adaptive -target-p99 arm; omitted otherwise so static records are
	// byte-identical to the pre-adaptive format).
	Shed        int64   `json:"shed,omitempty"`
	ShedRate    float64 `json:"shed_rate,omitempty"`
	AdmitWindow int     `json:"admit_window,omitempty"`
	TargetP99Ns int64   `json:"target_p99_ns,omitempty"`

	// Scenario runs (-wall-scenario) add the traffic shape, which
	// admission arm ran, and the per-phase latency rows.
	Scenario        string        `json:"scenario,omitempty"`
	StaticAdmission bool          `json:"static_admission,omitempty"`
	Phases          []phaseRecord `json:"phases,omitempty"`
}

// phaseRecord is one scenario phase's slice of a benchRecord.
type phaseRecord struct {
	Name    string `json:"name"`
	Lookups int64  `json:"lookups"`
	Shed    int64  `json:"shed"`
	Updates int64  `json:"updates"`
	P50Ns   int64  `json:"p50_ns"`
	P95Ns   int64  `json:"p95_ns"`
	P99Ns   int64  `json:"p99_ns"`
}

// writeBenchJSON writes one configuration's record as
// <dir>/BENCH_<name>.json.
func writeBenchJSON(dir string, rec benchRecord) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+rec.Name+".json"), append(data, '\n'), 0o644)
}

// runWall measures wall-clock serving throughput and latency for the
// locked baseline, the snapshot fast path — as a sorted/unsorted A/B
// pair, unless -unsorted forces the baseline everywhere — and (with
// shards > 1) the key-space sharded server under the same client mix,
// printing one row per configuration plus a per-shard breakdown for the
// sharded run. With -bench-json each row is also written as
// BENCH_<name>.json.
func runWall(p wallParams) error {
	if p.scenario != "" {
		return runScenario(p)
	}
	if p.updateFrac > 0 && p.rebuildEvery > 0 {
		return fmt.Errorf("-update-frac and -rebuild-every are mutually exclusive")
	}
	if p.rebalance && p.shards <= 1 {
		return fmt.Errorf("-rebalance requires -shards > 1")
	}
	if p.layout != "tuned" && p.layout != "uniform" {
		return fmt.Errorf("-layout must be tuned or uniform, got %q", p.layout)
	}
	treeOpt := hbtree.Options{}
	if p.updateFrac > 0 {
		treeOpt.Variant = hbtree.Regular
	}
	fmt.Printf("wall-clock serving: %d tuples, %d clients, %s per run, update-frac %.2f, rebuild-every %v, shards %d, coalesce-batch %d, layout %s, GOMAXPROCS %d\n",
		p.n, p.clients, p.dur, p.updateFrac, p.rebuildEvery, p.shards, p.maxBatch, p.layout, runtime.GOMAXPROCS(0))
	pairs := hbtree.GeneratePairs[uint64](p.n, p.seed)
	type wallCfg struct {
		name     string
		locked   bool
		shards   int
		unsorted bool
		noDelta  bool
	}
	var cfgs []wallCfg
	if p.unsorted {
		cfgs = []wallCfg{{"locked", true, 0, true, p.noDelta}, {"fast", false, 0, true, p.noDelta}}
	} else {
		// The fast path runs as an A/B pair: identical client mix, only
		// the flush discipline differs.
		cfgs = []wallCfg{{"locked", true, 0, false, p.noDelta},
			{"fast-unsorted", false, 0, true, p.noDelta}, {"fast", false, 0, false, p.noDelta}}
	}
	if p.updateFrac > 0 && !p.noDelta {
		// The write-path A/B pair: same client mix and leaf layout as
		// "fast", every batch forced through clone-and-swap.
		cfgs = append(cfgs, wallCfg{"fast-clone", false, 0, p.unsorted, true})
	}
	if p.shards > 1 {
		cfgs = append(cfgs, wallCfg{"sharded", false, p.shards, p.unsorted, p.noDelta})
	}
	for _, cfg := range cfgs {
		opt := serve.WallOptions{
			Clients:       p.clients,
			Duration:      p.dur,
			UpdateFrac:    p.updateFrac,
			UpdateSkew:    p.updateSkew,
			RebuildEvery:  p.rebuildEvery,
			Locked:        cfg.locked,
			Shards:        cfg.shards,
			MaxBatch:      p.maxBatch,
			Unsorted:      cfg.unsorted,
			UniformLayout: p.layout == "uniform",
			NoDeltaLeaves: cfg.noDelta,
			MaxPending:    p.maxPending,
			Shed:          p.maxPending > 0 && p.targetP99 == 0 && p.staticAdm,
			TargetP99:     p.targetP99,
			MinPending:    p.minPending,
			FlushStall:    p.flushStall,
		}
		if p.rebalance && cfg.shards > 1 {
			// Defaults except the poll period: a benchmark-length run
			// needs the detector to act within the measurement.
			opt.Rebalance = &serve.RebalanceOptions{Interval: 10 * time.Millisecond}
		}
		res, err := serve.RunWall(pairs, treeOpt, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.name, err)
		}
		fmt.Printf("  %-13s  %s\n", cfg.name, res)
		if res.Shards > 0 {
			for i := 0; i < res.Shards; i++ {
				fmt.Printf("    shard %d: %d swaps, %d update ops\n", i, res.ShardSwaps[i], res.ShardUpdates[i])
			}
		}
		if p.jsonDir != "" {
			rec := benchRecord{
				Name:            cfg.name,
				Unsorted:        cfg.unsorted,
				Tuples:          p.n,
				Clients:         p.clients,
				MaxBatch:        p.maxBatch,
				GOMAXPROCS:      runtime.GOMAXPROCS(0),
				ElapsedNs:       res.Elapsed.Nanoseconds(),
				Lookups:         res.Lookups,
				Updates:         res.Updates,
				MQPS:            res.MQPS,
				P50Ns:           res.P50.Nanoseconds(),
				P95Ns:           res.P95.Nanoseconds(),
				P99Ns:           res.P99.Nanoseconds(),
				AllocsPerLookup: res.AllocsPerLookup,
				Batches:         res.Batches,
				Folded:          res.Folded,
				NodeProbes:      res.NodeProbes,
				ProbesSaved:     res.ProbesSaved,
				Layout:          res.Layout,
				LevelWidths:     res.LevelWidths,
				LineBytes:       res.LineBytes,
				Shards:          res.Shards,
				NoDeltaLeaves:   cfg.noDelta,
				UpdateMQPS:      res.UpdateMQPS,
				InPlaceBatches:  res.InPlaceBatches,
				CloneFallbacks:  res.CloneFallbacks,
				ClonedNodes:     res.ClonedNodes,
				ClonedBytes:     res.ClonedBytes,
				DuringWriteP99N: res.DuringWriteP99.Nanoseconds(),
				Shed:            res.Shed,
				ShedRate:        res.ShedRate,
				AdmitWindow:     res.AdmitWindow,
				TargetP99Ns:     res.TargetP99.Nanoseconds(),
				StaticAdmission: p.staticAdm,
			}
			if err := writeBenchJSON(p.jsonDir, rec); err != nil {
				return fmt.Errorf("%s: writing bench json: %w", cfg.name, err)
			}
		}
	}
	return nil
}

// runScenario drives one overload scenario (-wall-scenario) against the
// locked baseline, the snapshot fast path and (with -shards > 1) the
// sharded server, printing per-phase latency rows per configuration.
// The same command line with -static-admission added replays identical
// offered traffic through a fixed admission window — the A/B pair the
// adaptive controller is judged against.
func runScenario(p wallParams) error {
	if p.rebuildEvery > 0 {
		return fmt.Errorf("-rebuild-every does not apply to -wall-scenario")
	}
	treeOpt := hbtree.Options{}
	if p.updateFrac > 0 || p.scenario == serve.ScenarioHotShift {
		// Hot-shift defaults to a write mix (migration without writes is
		// just a read skew), and any write mix needs the regular variant.
		treeOpt.Variant = hbtree.Regular
	}
	arm := "adaptive"
	if p.targetP99 <= 0 {
		arm = "static"
	}
	fmt.Printf("overload scenario %q (%s admission): %d tuples, base clients %d, %s per run, shards %d, target-p99 %v, flush-stall %v, GOMAXPROCS %d\n",
		p.scenario, arm, p.n, p.clients, p.dur, p.shards, p.targetP99, p.flushStall, runtime.GOMAXPROCS(0))
	pairs := hbtree.GeneratePairs[uint64](p.n, p.seed)
	type scenCfg struct {
		name   string
		locked bool
		shards int
	}
	cfgs := []scenCfg{{"locked", true, 0}, {"fast", false, 0}}
	if p.shards > 1 {
		cfgs = append(cfgs, scenCfg{"sharded", false, p.shards})
	}
	for _, cfg := range cfgs {
		opt := serve.ScenarioOptions{
			Kind:        p.scenario,
			BaseClients: p.clients,
			Duration:    p.dur,
			Locked:      cfg.locked,
			Shards:      cfg.shards,
			MaxBatch:    p.maxBatch,
			MaxPending:  p.maxPending,
			MinPending:  p.minPending,
			TargetP99:   p.targetP99,
			FlushStall:  p.flushStall,
			Unsorted:    p.unsorted,
			UpdateFrac:  p.updateFrac,
			Seed:        int64(p.seed),
		}
		res, err := serve.RunWallScenario(pairs, treeOpt, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.name, err)
		}
		fmt.Printf("  %-8s %s\n", cfg.name, res)
		if p.jsonDir != "" {
			rec := benchRecord{
				Name:            p.scenario + "-" + cfg.name + "-" + arm,
				Unsorted:        p.unsorted,
				Tuples:          p.n,
				Clients:         p.clients,
				MaxBatch:        p.maxBatch,
				GOMAXPROCS:      runtime.GOMAXPROCS(0),
				ElapsedNs:       res.Elapsed.Nanoseconds(),
				Lookups:         res.Lookups,
				Updates:         res.Updates,
				MQPS:            res.MQPS,
				Batches:         res.Batches,
				Shards:          cfg.shards,
				Shed:            res.Shed,
				ShedRate:        res.ShedRate,
				AdmitWindow:     res.AdmitFinal,
				TargetP99Ns:     res.TargetP99.Nanoseconds(),
				Scenario:        p.scenario,
				StaticAdmission: p.targetP99 <= 0,
			}
			for _, ph := range res.Phases {
				rec.Phases = append(rec.Phases, phaseRecord{
					Name:    ph.Name,
					Lookups: ph.Lookups,
					Shed:    ph.Shed,
					Updates: ph.Updates,
					P50Ns:   ph.P50.Nanoseconds(),
					P95Ns:   ph.P95.Nanoseconds(),
					P99Ns:   ph.P99.Nanoseconds(),
				})
			}
			if err := writeBenchJSON(p.jsonDir, rec); err != nil {
				return fmt.Errorf("%s: writing bench json: %w", cfg.name, err)
			}
		}
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		mult := 1
		switch {
		case strings.HasSuffix(part, "K"), strings.HasSuffix(part, "k"):
			mult = 1 << 10
			part = part[:len(part)-1]
		case strings.HasSuffix(part, "M"), strings.HasSuffix(part, "m"):
			mult = 1 << 20
			part = part[:len(part)-1]
		case strings.HasSuffix(part, "G"), strings.HasSuffix(part, "g"):
			mult = 1 << 30
			part = part[:len(part)-1]
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", part, err)
		}
		out = append(out, v*mult)
	}
	return out, nil
}
