// Command hbbench regenerates the tables and figures of the paper's
// evaluation (Figures 7-21). Each experiment builds the required trees,
// executes the workload functionally on the simulated platform, and
// prints the same rows/series the paper plots.
//
// Usage:
//
//	hbbench -list
//	hbbench -run fig16 -machine M1 -sizes 1M,4M,16M -queries 524288
//	hbbench -run all -quick
//
// Sizes accept K/M/G suffixes (powers of two).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hbtree/internal/harness"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		run     = flag.String("run", "all", "experiment id (fig7..fig21) or 'all'")
		machine = flag.String("machine", "M1", "platform model: M1 or M2")
		sizes   = flag.String("sizes", "", "comma-separated dataset sizes (e.g. 1M,4M,16M)")
		queries = flag.Int("queries", 0, "search queries per measurement")
		seed    = flag.Uint64("seed", 42, "workload seed")
		quick   = flag.Bool("quick", false, "small sizes for a fast smoke run")
		format  = flag.String("format", "table", "output format: table or csv")
	)
	flag.Parse()

	if *list {
		for _, id := range harness.IDs() {
			title, _ := harness.Describe(id)
			fmt.Printf("  %-6s  %s\n", id, title)
		}
		return
	}

	cfg := harness.Config{
		Machine: *machine,
		Queries: *queries,
		Seed:    *seed,
		Quick:   *quick,
	}
	if *sizes != "" {
		parsed, err := parseSizes(*sizes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbbench:", err)
			os.Exit(2)
		}
		cfg.Sizes = parsed
	}

	emit := func(tables []harness.Table) error {
		for i := range tables {
			if *format == "csv" {
				if err := tables[i].WriteCSV(os.Stdout); err != nil {
					return err
				}
				fmt.Println()
				continue
			}
			tables[i].Fprint(os.Stdout)
		}
		return nil
	}

	if *run == "all" {
		if *format == "csv" {
			for _, id := range harness.IDs() {
				tables, err := harness.Run(id, cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, "hbbench:", err)
					os.Exit(1)
				}
				if err := emit(tables); err != nil {
					fmt.Fprintln(os.Stderr, "hbbench:", err)
					os.Exit(1)
				}
			}
			return
		}
		if err := harness.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "hbbench:", err)
			os.Exit(1)
		}
		return
	}
	tables, err := harness.Run(*run, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbbench:", err)
		os.Exit(1)
	}
	if err := emit(tables); err != nil {
		fmt.Fprintln(os.Stderr, "hbbench:", err)
		os.Exit(1)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		mult := 1
		switch {
		case strings.HasSuffix(part, "K"), strings.HasSuffix(part, "k"):
			mult = 1 << 10
			part = part[:len(part)-1]
		case strings.HasSuffix(part, "M"), strings.HasSuffix(part, "m"):
			mult = 1 << 20
			part = part[:len(part)-1]
		case strings.HasSuffix(part, "G"), strings.HasSuffix(part, "g"):
			mult = 1 << 30
			part = part[:len(part)-1]
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", part, err)
		}
		out = append(out, v*mult)
	}
	return out, nil
}
