package main

import "testing"

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("1K, 2M,3G,512")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1 << 10, 2 << 20, 3 << 30, 512}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if _, err := parseSizes("abc"); err == nil {
		t.Fatal("bad size accepted")
	}
	if _, err := parseSizes("1X"); err == nil {
		t.Fatal("bad suffix accepted")
	}
}
