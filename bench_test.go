// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per figure, Figures 7-21), plus ablation
// benches for the design decisions called out in DESIGN.md and
// wall-clock micro-benchmarks of the functional trees.
//
// Figure benches drive the experiment harness at a reduced scale and
// report the headline simulated metric (MQPS or milliseconds) via
// b.ReportMetric; the full-scale tables come from `go run ./cmd/hbbench`.
package hbtree_test

import (
	"strconv"
	"testing"

	"hbtree"
	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/fast"
	"hbtree/internal/harness"
	"hbtree/internal/platform"
	"hbtree/internal/simd"
	"hbtree/internal/workload"
)

// benchCfg is the reduced-scale configuration for figure regeneration
// inside the benchmark suite.
func benchCfg() harness.Config {
	return harness.Config{Quick: true, Sizes: []int{1 << 19}, Queries: 1 << 16, Seed: 42}
}

// cellF parses a numeric cell of a harness table.
func cellF(b *testing.B, s string) float64 {
	b.Helper()
	for len(s) > 0 && (s[len(s)-1] == 'x' || s[len(s)-1] == '%') {
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return v
}

// runFigure regenerates one figure per iteration and returns the last
// run's tables.
func runFigure(b *testing.B, id string) []harness.Table {
	b.Helper()
	var tables []harness.Table
	var err error
	for i := 0; i < b.N; i++ {
		tables, err = harness.Run(id, benchCfg())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return tables
}

func BenchmarkFig07PageConfig(b *testing.B) {
	t := runFigure(b, "fig7")
	last := t[1].Rows[len(t[1].Rows)-1]
	b.ReportMetric(cellF(b, last[3]), "MQPS-1G/1G")
	b.ReportMetric(cellF(b, t[0].Rows[len(t[0].Rows)-1][1]), "TLBmiss/q-4K")
}

func BenchmarkFig08NodeSearch(b *testing.B) {
	t := runFigure(b, "fig8")
	last := t[0].Rows[len(t[0].Rows)-1]
	b.ReportMetric(cellF(b, last[4]), "MQPS-hier")
	b.ReportMetric(cellF(b, last[5]), "SWP-gain")
}

func BenchmarkFig09FAST(b *testing.B) {
	t := runFigure(b, "fig9")
	last := t[0].Rows[len(t[0].Rows)-1]
	b.ReportMetric(cellF(b, last[3]), "Bplus/FAST")
}

func BenchmarkFig10BucketStrategy(b *testing.B) {
	t := runFigure(b, "fig10")
	for _, r := range t[0].Rows {
		if r[0] == "implicit" {
			b.ReportMetric(cellF(b, r[3]), "MQPS-doublebuf")
			b.ReportMetric(cellF(b, r[4]), "gain-%")
		}
	}
}

func BenchmarkFig11BucketSize(b *testing.B) {
	t := runFigure(b, "fig11")
	b.ReportMetric(cellF(b, t[0].Rows[1][1]), "MQPS-16K")
	b.ReportMetric(cellF(b, t[1].Rows[1][1]), "lat-ms-16K")
}

func BenchmarkFig12Skew(b *testing.B) {
	t := runFigure(b, "fig12")
	for _, r := range t[0].Rows {
		if r[0] == "Zipf" {
			b.ReportMetric(cellF(b, r[1]), "zipf-gain")
		}
	}
}

func BenchmarkFig13Update(b *testing.B) {
	t := runFigure(b, "fig13")
	last := t[0].Rows[len(t[0].Rows)-1]
	b.ReportMetric(cellF(b, last[2]), "MUPS-asyncMT")
	b.ReportMetric(cellF(b, last[3]), "MUPS-sync")
}

func BenchmarkFig14BatchSize(b *testing.B) {
	t := runFigure(b, "fig14")
	b.ReportMetric(cellF(b, t[0].Rows[0][1]), "sync-ms-small")
	b.ReportMetric(cellF(b, t[0].Rows[len(t[0].Rows)-1][2]), "async-ms-large")
}

func BenchmarkFig15ImplicitUpdate(b *testing.B) {
	t := runFigure(b, "fig15")
	last := t[0].Rows[len(t[0].Rows)-1]
	b.ReportMetric(cellF(b, last[4]), "xfer-share-%")
}

func BenchmarkFig16Throughput(b *testing.B) {
	t := runFigure(b, "fig16")
	last := t[0].Rows[len(t[0].Rows)-1]
	b.ReportMetric(cellF(b, last[3]), "MQPS-HBimpl")
	b.ReportMetric(cellF(b, last[5]), "HB/CPU-gain")
}

func BenchmarkFig17Range(b *testing.B) {
	t := runFigure(b, "fig17")
	b.ReportMetric(cellF(b, t[0].Rows[0][5]), "adv-%-1match")
	b.ReportMetric(cellF(b, t[0].Rows[len(t[0].Rows)-1][5]), "adv-%-32match")
}

func BenchmarkFig18LoadBalance(b *testing.B) {
	t := runFigure(b, "fig18")
	last := t[0].Rows[len(t[0].Rows)-1]
	b.ReportMetric(cellF(b, last[4]), "MQPS-LB")
	b.ReportMetric(cellF(b, last[3]), "MQPS-noLB")
}

func BenchmarkFig19CPUOnly(b *testing.B) {
	t := runFigure(b, "fig19")
	last := t[0].Rows[len(t[0].Rows)-1]
	b.ReportMetric(cellF(b, last[2]), "MQPS-HBcpu")
}

func BenchmarkFig20Pipelining(b *testing.B) {
	t := runFigure(b, "fig20")
	for _, r := range t[0].Rows {
		if r[0] == "16" {
			b.ReportMetric(cellF(b, r[1]), "MQPS-depth16")
		}
	}
}

func BenchmarkFig21Mixed(b *testing.B) {
	t := runFigure(b, "fig21")
	last := t[0].Rows[len(t[0].Rows)-1]
	b.ReportMetric(cellF(b, last[1]), "MOPS-async-100%upd")
}

// --- wall-clock micro-benchmarks of the functional trees -------------

const benchTreeSize = 1 << 20

func benchPairs() []hbtree.Pair[uint64] {
	return workload.Dataset[uint64](workload.Uniform, benchTreeSize, 42)
}

func BenchmarkWallImplicitLookup(b *testing.B) {
	pairs := benchPairs()
	t, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{NodeSearch: simd.Hierarchical})
	if err != nil {
		b.Fatal(err)
	}
	qs := workload.SearchInput(pairs, 1<<16, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Lookup(qs[i&(len(qs)-1)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkWallRegularLookup(b *testing.B) {
	pairs := benchPairs()
	t, err := cpubtree.BuildRegular(pairs, cpubtree.Config{NodeSearch: simd.Hierarchical})
	if err != nil {
		b.Fatal(err)
	}
	qs := workload.SearchInput(pairs, 1<<16, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Lookup(qs[i&(len(qs)-1)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkWallFASTLookup(b *testing.B) {
	pairs := benchPairs()
	t, err := fast.Build(pairs, 1)
	if err != nil {
		b.Fatal(err)
	}
	qs := workload.SearchInput(pairs, 1<<16, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Lookup(qs[i&(len(qs)-1)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkWallHybridBatch(b *testing.B) {
	pairs := benchPairs()
	t, err := hbtree.New(pairs, hbtree.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer t.Close()
	qs := hbtree.ShuffledQueries(pairs, 1<<16, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, stats, err := t.LookupBatch(qs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.ThroughputQPS/1e6, "simMQPS")
	}
}

func BenchmarkWallRegularInsert(b *testing.B) {
	pairs := benchPairs()
	t, err := cpubtree.BuildRegular(pairs, cpubtree.Config{LeafFill: 0.7})
	if err != nil {
		b.Fatal(err)
	}
	r := workload.NewRNG(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := r.Uint64()
		if k == ^uint64(0) {
			k--
		}
		if _, err := t.Insert(k, k); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (DESIGN.md section 4) --------------------------

// BenchmarkAblationIndexLine compares the regular tree's three-line node
// search (index line + key line + reference) against scanning every key
// line, quantifying the cache-blocking win of Figure 2(c).
func BenchmarkAblationIndexLine(b *testing.B) {
	pairs := benchPairs()
	t, err := cpubtree.BuildRegular(pairs, cpubtree.Config{})
	if err != nil {
		b.Fatal(err)
	}
	qs := workload.SearchInput(pairs, 1<<16, 3)
	b.Run("index-line", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t.Lookup(qs[i&(len(qs)-1)])
		}
	})
	b.Run("scan-all-lines", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t.LookupScanAblation(qs[i&(len(qs)-1)])
		}
	})
}

// BenchmarkAblationNodeSearch compares the three in-node kernels inside
// full tree lookups (complements the line-level bench in internal/simd).
func BenchmarkAblationNodeSearch(b *testing.B) {
	pairs := benchPairs()
	for _, alg := range []simd.Algorithm{simd.Sequential, simd.Linear, simd.Hierarchical} {
		t, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{NodeSearch: alg})
		if err != nil {
			b.Fatal(err)
		}
		qs := workload.SearchInput(pairs, 1<<16, 3)
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t.Lookup(qs[i&(len(qs)-1)])
			}
		})
	}
}

// BenchmarkAblationLeafSize measures range scans against the big-leaf
// regular layout vs the single-line implicit layout (the design point of
// Section 4.1's "bigger leaf nodes").
func BenchmarkAblationLeafSize(b *testing.B) {
	pairs := benchPairs()
	impl, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{})
	if err != nil {
		b.Fatal(err)
	}
	reg, err := cpubtree.BuildRegular(pairs, cpubtree.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rqs := workload.RangeQueries(pairs, 1<<12, 32, 5)
	var out []hbtree.Pair[uint64]
	b.Run("implicit-lines", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rq := rqs[i&(len(rqs)-1)]
			out = impl.RangeQuery(rq.Start, rq.Count, out[:0])
		}
	})
	b.Run("regular-bigleaf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rq := rqs[i&(len(rqs)-1)]
			out = reg.RangeQuery(rq.Start, rq.Count, out[:0])
		}
	})
}

// BenchmarkAblationDiscovery compares the cost of Algorithm 1 against an
// exhaustive (D, R) sweep; both land on near-identical parameters (see
// TestDiscoveryNearOptimal) but discovery needs far fewer samples.
func BenchmarkAblationDiscovery(b *testing.B) {
	pairs := benchPairs()
	t, err := core.Build(pairs, core.Options{Machine: platform.M2(), LoadBalance: true})
	if err != nil {
		b.Fatal(err)
	}
	defer t.Close()
	b.Run("algorithm1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t.Discover()
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			best := core.Balance{D: 0, R: 1}
			bestCost := -1.0
			for d := 0; d <= t.Height()-2; d++ {
				for r := 0.0; r <= 1.0; r += 0.05 {
					if err := t.SetBalance(core.Balance{D: d, R: r}); err != nil {
						b.Fatal(err)
					}
					g, c := t.SampleBalance(core.Balance{D: d, R: r})
					cost := g.Seconds()
					if c > g {
						cost = c.Seconds()
					}
					if bestCost < 0 || cost < bestCost {
						bestCost, best = cost, core.Balance{D: d, R: r}
					}
				}
			}
			_ = best
		}
	})
}

// --- extension benches (paper Section 7 future work) ------------------

func BenchmarkExtGPUAssistedUpdate(b *testing.B) {
	t := runFigure(b, "ext-update")
	last := t[0].Rows[len(t[0].Rows)-1]
	b.ReportMetric(cellF(b, last[3]), "host-speedup")
}

func BenchmarkExtFramework(b *testing.B) {
	t := runFigure(b, "ext-framework")
	b.ReportMetric(cellF(b, t[0].Rows[1][1]), "MQPS-CSS")
}

func BenchmarkFig0506PipelineTrace(b *testing.B) {
	t := runFigure(b, "fig5-6")
	if len(t) != 3 {
		b.Fatal("missing strategy charts")
	}
}
