package hbtree_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hbtree"
)

// Integration stress test of the public serving facade: coalesced and
// direct readers against a writer rebuilding the implicit tree, all on
// one shared hbtree.Server. Run under `go test -race`; pairs with the
// internal/serve suite, which stresses the regular variant's batch
// updates.
//
// Value encoding: generation g stores ValueFor(key)+g for every key, so
// readers can validate any observed value (offset in [0, gens]) and
// enforce that the offset never decreases for a single reader — the
// linearization the server's writer lock guarantees.
func TestIntegrationCoalescedServingUnderRebuilds(t *testing.T) {
	nPairs, readers, gens := 1<<12, 5, uint64(4)
	if testing.Short() {
		nPairs, readers, gens = 1<<10, 3, 2
	}
	base := hbtree.GeneratePairs[uint64](nPairs, 7)
	tree, err := hbtree.New(base, hbtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := hbtree.NewServer(tree)
	defer srv.Close()
	co := srv.Coalesce(hbtree.CoalescerOptions{MaxBatch: 128, Window: 200 * time.Microsecond})

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			seen := make(map[uint64]uint64)
			check := func(k, v uint64, found bool) bool {
				if !found {
					t.Errorf("key %d disappeared during rebuild", k)
					return false
				}
				off := v - hbtree.ValueFor(k)
				if off > gens {
					t.Errorf("key %d: value %d is no valid generation", k, v)
					return false
				}
				if prev, ok := seen[k]; ok && off < prev {
					t.Errorf("key %d: generation went backwards %d -> %d", k, prev, off)
					return false
				}
				seen[k] = off
				return true
			}
			for {
				select {
				case <-done:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0: // coalesced point lookup
					k := base[rng.Intn(len(base))].Key
					v, found, err := co.Lookup(k)
					if err != nil {
						t.Errorf("coalesced lookup: %v", err)
						return
					}
					if !check(k, v, found) {
						return
					}
				case 1: // direct heterogeneous batch
					qs := make([]uint64, 16)
					for i := range qs {
						qs[i] = base[rng.Intn(len(base))].Key
					}
					values, found, _, err := srv.LookupBatch(qs)
					if err != nil {
						t.Errorf("LookupBatch: %v", err)
						return
					}
					for i, k := range qs {
						if !check(k, values[i], found[i]) {
							return
						}
					}
				case 2: // range query: sorted and generation-consistent
					start := base[rng.Intn(len(base))].Key
					out := srv.RangeQuery(start, 8)
					for i, p := range out {
						if i > 0 && p.Key <= out[i-1].Key {
							t.Errorf("RangeQuery unsorted")
							return
						}
						if off := p.Value - hbtree.ValueFor(p.Key); off > gens {
							t.Errorf("RangeQuery: invalid generation for key %d", p.Key)
							return
						}
					}
				}
			}
		}(r)
	}

	// Writer: rebuild the whole implicit tree once per generation, the
	// variant's only update path (Section 5.6).
	for g := uint64(1); g <= gens; g++ {
		next := make([]hbtree.Pair[uint64], len(base))
		for i, p := range base {
			next[i] = hbtree.Pair[uint64]{Key: p.Key, Value: p.Value + g}
		}
		if _, err := srv.Rebuild(next); err != nil {
			t.Errorf("rebuild gen %d: %v", g, err)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(done)
	wg.Wait()
	co.Close()

	// Final state: every key at the last generation.
	qs := make([]uint64, len(base))
	for i, p := range base {
		qs[i] = p.Key
	}
	values, found, _, err := srv.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range base {
		if !found[i] || values[i] != p.Value+gens {
			t.Fatalf("final key %d = (%d, %v), want %d", p.Key, values[i], found[i], p.Value+gens)
		}
	}
}

// TestIntegrationSwapHeavyUpdatesUnderReads stresses the snapshot
// publication path of the facade on the regular variant: concurrent
// coalesced, batch and range readers against a writer that applies
// every generation as many small Update batches — each one a
// clone-and-swap publication. The per-reader oracle enforces the same
// generation monotonicity as the rebuild test above: the atomic
// snapshot pointer gives publications a total order, so a single
// reader can never observe a key's generation move backwards.
func TestIntegrationSwapHeavyUpdatesUnderReads(t *testing.T) {
	nPairs, readers, gens := 1<<12, 4, uint64(4)
	if testing.Short() {
		nPairs, readers, gens = 1<<10, 3, 2
	}
	base := hbtree.GeneratePairs[uint64](nPairs, 11)
	tree, err := hbtree.New(base, hbtree.Options{Variant: hbtree.Regular})
	if err != nil {
		t.Fatal(err)
	}
	srv := hbtree.NewServer(tree)
	defer srv.Close()
	co := srv.Coalesce(hbtree.CoalescerOptions{MaxBatch: 128, Window: 200 * time.Microsecond})

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 100))
			seen := make(map[uint64]uint64)
			check := func(k, v uint64, found bool) bool {
				if !found {
					t.Errorf("key %d disappeared during update", k)
					return false
				}
				off := v - hbtree.ValueFor(k)
				if off > gens {
					t.Errorf("key %d: value %d is no valid generation", k, v)
					return false
				}
				if prev, ok := seen[k]; ok && off < prev {
					t.Errorf("key %d: generation went backwards %d -> %d", k, prev, off)
					return false
				}
				seen[k] = off
				return true
			}
			for {
				select {
				case <-done:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0: // coalesced point lookup
					k := base[rng.Intn(len(base))].Key
					v, found, err := co.Lookup(k)
					if err != nil {
						t.Errorf("coalesced lookup: %v", err)
						return
					}
					if !check(k, v, found) {
						return
					}
				case 1: // direct heterogeneous batch
					qs := make([]uint64, 16)
					for i := range qs {
						qs[i] = base[rng.Intn(len(base))].Key
					}
					values, found, _, err := srv.LookupBatch(qs)
					if err != nil {
						t.Errorf("LookupBatch: %v", err)
						return
					}
					for i, k := range qs {
						if !check(k, values[i], found[i]) {
							return
						}
					}
				case 2: // range query: sorted and generation-consistent
					start := base[rng.Intn(len(base))].Key
					out := srv.RangeQuery(start, 8)
					for i, p := range out {
						if i > 0 && p.Key <= out[i-1].Key {
							t.Errorf("RangeQuery unsorted")
							return
						}
						if off := p.Value - hbtree.ValueFor(p.Key); off > gens {
							t.Errorf("RangeQuery: invalid generation for key %d", p.Key)
							return
						}
					}
				}
			}
		}(r)
	}

	// Writer: each generation lands as many small batches, every one a
	// snapshot publication.
	const chunk = 256
	for g := uint64(1); g <= gens; g++ {
		for start := 0; start < len(base); start += chunk {
			end := min(start+chunk, len(base))
			ops := make([]hbtree.Op[uint64], 0, chunk)
			for _, p := range base[start:end] {
				ops = append(ops, hbtree.Op[uint64]{Key: p.Key, Value: p.Value + g})
			}
			if _, err := srv.Update(ops, hbtree.AsyncParallel); err != nil {
				t.Errorf("update gen %d: %v", g, err)
				break
			}
		}
	}
	close(done)
	wg.Wait()
	co.Close()

	if want := int64(gens) * int64((nPairs+chunk-1)/chunk); srv.Swaps() != want {
		t.Fatalf("swaps = %d, want %d", srv.Swaps(), want)
	}

	// Final state: every key at the last generation.
	qs := make([]uint64, len(base))
	for i, p := range base {
		qs[i] = p.Key
	}
	values, found, _, err := srv.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range base {
		if !found[i] || values[i] != p.Value+gens {
			t.Fatalf("final key %d = (%d, %v), want %d", p.Key, values[i], found[i], p.Value+gens)
		}
	}
}

// TestTreeCoalescedFacade exercises the one-call Tree.Coalesced path
// and the closed-coalescer error surface.
func TestTreeCoalescedFacade(t *testing.T) {
	pairs := hbtree.GeneratePairs[uint64](1<<10, 3)
	tree, err := hbtree.New(pairs, hbtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, co := tree.Coalesced()
	defer srv.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				p := pairs[(g*32+i)%len(pairs)]
				v, found, err := co.Lookup(p.Key)
				if err != nil || !found || v != p.Value {
					t.Errorf("coalesced lookup = (%d, %v, %v)", v, found, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	co.Close()
	if _, _, err := co.Lookup(pairs[0].Key); !errors.Is(err, hbtree.ErrServerClosed) {
		t.Fatalf("post-close err = %v, want ErrServerClosed", err)
	}
	m := srv.Metrics()
	if m.Batches == 0 || m.BatchedQueries != 4*32 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestIntegrationShardedStitchingUnderSwaps stresses the key-space
// sharded facade: cross-shard RangeQuery/Scan stitches and coalesced
// point reads race against a writer pushing generations through the
// per-shard update pumps, so every read crosses shard boundaries while
// the shards swap snapshots independently. The oracle checks three
// contracts: point reads never see a key's generation move backwards
// (per-shard snapshots are totally ordered), stitched ranges are
// exactly the consecutive run of the fixed key set (no key lost,
// duplicated or reordered at a boundary), and every stitched value is a
// valid generation (a torn view within one shard is impossible even
// though the stitch is not one atomic cut across shards).
func TestIntegrationShardedStitchingUnderSwaps(t *testing.T) {
	nPairs, readers, gens := 1<<12, 4, uint64(4)
	if testing.Short() {
		nPairs, readers, gens = 1<<10, 3, 2
	}
	const shards = 4
	base := hbtree.GeneratePairs[uint64](nPairs, 17)
	tree, err := hbtree.New(base, hbtree.Options{Variant: hbtree.Regular})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := tree.Sharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	tree.Close()
	defer srv.Close()
	co := srv.Coalesce(hbtree.CoalescerOptions{MaxBatch: 128, Window: 200 * time.Microsecond})

	// Stitch starts: a few pairs before each shard bound, so an 8-pair
	// range always crosses the boundary, plus random starts.
	keyIdx := make(map[uint64]int, len(base))
	for i, p := range base {
		keyIdx[p.Key] = i
	}
	bounds := srv.Bounds()
	boundaryStarts := make([]int, 0, len(bounds))
	for _, b := range bounds {
		boundaryStarts = append(boundaryStarts, keyIdx[b]-4)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 500))
			seen := make(map[uint64]uint64)
			check := func(k, v uint64, found bool) bool {
				if !found {
					t.Errorf("key %d disappeared during sharded update", k)
					return false
				}
				off := v - hbtree.ValueFor(k)
				if off > gens {
					t.Errorf("key %d: value %d is no valid generation", k, v)
					return false
				}
				if prev, ok := seen[k]; ok && off < prev {
					t.Errorf("key %d: generation went backwards %d -> %d", k, prev, off)
					return false
				}
				seen[k] = off
				return true
			}
			checkStitch := func(kind string, startIdx int, out []hbtree.Pair[uint64]) bool {
				// The key set is fixed, so a stitched window must be
				// exactly the consecutive run of base keys from the
				// start — any boundary slip shows as a wrong key.
				for i, p := range out {
					want := base[startIdx+i].Key
					if p.Key != want {
						t.Errorf("%s from base[%d]: pos %d has key %d, want %d", kind, startIdx, i, p.Key, want)
						return false
					}
					if off := p.Value - hbtree.ValueFor(p.Key); off > gens {
						t.Errorf("%s: invalid generation for key %d", kind, p.Key)
						return false
					}
				}
				if len(out) != 8 {
					t.Errorf("%s from base[%d]: got %d pairs, want 8", kind, startIdx, len(out))
					return false
				}
				return true
			}
			for {
				select {
				case <-done:
					return
				default:
				}
				switch rng.Intn(4) {
				case 0: // coalesced point lookup, routed by key
					k := base[rng.Intn(len(base))].Key
					v, found, err := co.Lookup(k)
					if err != nil {
						t.Errorf("coalesced lookup: %v", err)
						return
					}
					if !check(k, v, found) {
						return
					}
				case 1: // batch lookup scattered across all shards
					qs := make([]uint64, 16)
					for i := range qs {
						qs[i] = base[rng.Intn(len(base))].Key
					}
					values, found, _, err := srv.LookupBatch(qs)
					if err != nil {
						t.Errorf("LookupBatch: %v", err)
						return
					}
					for i, k := range qs {
						if !check(k, values[i], found[i]) {
							return
						}
					}
				case 2: // boundary-crossing range stitch
					startIdx := boundaryStarts[rng.Intn(len(boundaryStarts))]
					if !checkStitch("RangeQuery", startIdx, srv.RangeQuery(base[startIdx].Key, 8)) {
						return
					}
				case 3: // cursor scan stitch from a random start
					startIdx := rng.Intn(len(base) - 8)
					if !checkStitch("Scan", startIdx, srv.Scan(base[startIdx].Key, 8)) {
						return
					}
				}
			}
		}(r)
	}

	// Writer: each generation lands as many small cross-shard batches.
	// Chunk c takes every nChunks-th key starting at c, so each Update
	// spans the whole key space, fans out to all four pumps and
	// publishes four concurrent swaps racing the stitched readers.
	const chunk = 256
	nChunks := (len(base) + chunk - 1) / chunk
	for g := uint64(1); g <= gens; g++ {
		for c := 0; c < nChunks; c++ {
			ops := make([]hbtree.Op[uint64], 0, chunk)
			for j := c; j < len(base); j += nChunks {
				ops = append(ops, hbtree.Op[uint64]{Key: base[j].Key, Value: base[j].Value + g})
			}
			if _, err := srv.Update(ops, hbtree.AsyncParallel); err != nil {
				t.Errorf("sharded update gen %d: %v", g, err)
				break
			}
		}
	}
	close(done)
	wg.Wait()
	co.Close()

	// Every shard took part in the swapping.
	for i, m := range srv.ShardMetrics() {
		if m.Swaps == 0 {
			t.Fatalf("shard %d never swapped", i)
		}
	}

	// Final state: every key at the last generation, via a cross-shard
	// batch lookup and a full stitched scan.
	qs := make([]uint64, len(base))
	for i, p := range base {
		qs[i] = p.Key
	}
	values, found, _, err := srv.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range base {
		if !found[i] || values[i] != p.Value+gens {
			t.Fatalf("final key %d = (%d, %v), want %d", p.Key, values[i], found[i], p.Value+gens)
		}
	}
	all := srv.Scan(0, len(base)+1)
	if len(all) != len(base) {
		t.Fatalf("full stitched scan returned %d pairs, want %d", len(all), len(base))
	}
	for i, p := range all {
		if p.Key != base[i].Key || p.Value != base[i].Value+gens {
			t.Fatalf("stitched scan[%d] = %v, want {%d %d}", i, p, base[i].Key, base[i].Value+gens)
		}
	}
}
