package hbtree

import (
	"hbtree/internal/serve"
)

// This file is the facade over internal/serve: the concurrency layer
// that makes a Tree safe to share between goroutines. A bare Tree
// follows the package's single-writer contract (see the package
// documentation); NewServer publishes it behind an atomic snapshot
// pointer (readers never block on batch updates or rebuilds), and a
// Coalescer batches concurrent point lookups into the bucket-sized
// LookupBatch calls the heterogeneous search path is built for.

// ErrServerClosed is returned by a Coalescer for requests it can no
// longer serve after Close.
var ErrServerClosed = serve.ErrClosed

// ErrServerOverloaded is returned by a Coalescer for requests shed by
// admission control (CoalescerOptions.MaxPending with Shed set): the
// in-flight window was full, the request was never queued, and the
// caller may retry or degrade.
var ErrServerOverloaded = serve.ErrOverloaded

// ErrDeadlineExceeded is returned when a request's context expires
// before the serving layer could complete it — a parked coalesced
// lookup whose flush never came, or an update abandoned while waiting
// for the writer slot. Unlike ErrServerOverloaded it does not imply the
// server refused the work; the request simply ran out of time.
var ErrDeadlineExceeded = serve.ErrDeadlineExceeded

// OverloadError is the typed shed error: every ErrServerOverloaded
// response unwraps to it (errors.As), and it carries the retry-after
// hint — the estimated admission-window drain time inflated by the
// current shed rate — that clients should back off by before retrying.
type OverloadError = serve.OverloadError

// OverloadMetrics is the admission-control view of a coalescer: shed
// counters, the windowed shed rate, the live admission window, and the
// adaptive controller's target (zero under static admission).
type OverloadMetrics = serve.OverloadMetrics

// RetryOptions bounds the GPU-path retry loop a Server runs before a
// faulted batch degrades to the CPU-only fallback (Server.SetResilience).
type RetryOptions = serve.RetryOptions

// CoalescerOptions configures Server.Coalesce: the size-or-deadline
// flush window, the shard count across which submissions spread, the
// admission window (MaxPending/Shed), and the adaptive latency-target
// controller (TargetP99/MinPending) that resizes the window online.
type CoalescerOptions = serve.Options

// ServerMetrics is a snapshot of a Server's serving counters, including
// the accumulated virtual serving time that makes per-request and
// coalesced serving comparable on the paper's calibrated clock.
type ServerMetrics = serve.Metrics

// Server makes a Tree safe for concurrent use: read operations (point,
// range and batch lookups, scans, stats) run concurrently against the
// current snapshot; Update and Rebuild construct a successor version
// aside and atomically publish it, so readers are never blocked for the
// duration of a batch write.
type Server[K Key] struct {
	*serve.Server[K]
}

// NewServer wraps t behind the snapshot-read contract. The tree must
// not be used directly while the server is serving.
func NewServer[K Key](t *Tree[K]) *Server[K] {
	return &Server[K]{serve.NewServer(t.Tree)}
}

// NewLockedServer wraps t behind the original sync.RWMutex contract,
// where Update and Rebuild exclude all readers for the duration of the
// batch. It is the A/B baseline for the snapshot mode and suits
// deployments that cannot spare a second I-segment replica during
// updates.
func NewLockedServer[K Key](t *Tree[K]) *Server[K] {
	return &Server[K]{serve.NewLockedServer(t.Tree)}
}

// Coalescer batches concurrent point lookups into LookupBatch calls
// under a size-or-deadline window. Obtain one with Server.Coalesce or
// Tree.Coalesced, and Close it to release its flusher goroutine.
type Coalescer[K Key] struct {
	*serve.Coalescer[K]
}

// Coalesce starts a request coalescer over the server.
func (s *Server[K]) Coalesce(opt CoalescerOptions) *Coalescer[K] {
	return &Coalescer[K]{serve.NewCoalescer(s.Server, opt)}
}

// Coalesced wraps the tree in a Server and a default-configured
// Coalescer (batch = the tree's bucket size, 100µs window): the
// one-call path to concurrency-safe, batch-amortised serving. The
// caller must Close the coalescer when done; closing the server also
// closes the tree.
func (t *Tree[K]) Coalesced() (*Server[K], *Coalescer[K]) {
	s := NewServer(t)
	return s, s.Coalesce(CoalescerOptions{})
}

// ShardedServer partitions the key space across T independent trees
// behind one epoch-versioned snapshot registry: writers clone 1/T of
// the data, shards rebuild concurrently, point lookups route by key
// allocation-free, and range reads stitch ordered results across shard
// boundaries. Scan and RangeQuery are per-shard consistent;
// ScanConsistent and RangeQueryConsistent pin a single registry epoch
// across every shard for one atomic cross-shard cut — see DESIGN §6
// for the consistency matrix.
//
// The shard layout itself is dynamic: SplitShard and MergeShards
// retile the key space online through single epoch transitions (no
// stop-the-world), and StartRebalancer runs a background detector that
// splits hot shards and merges cold neighbours as the update stream
// skews (RebalanceStats reports what it did).
type ShardedServer[K Key] struct {
	*serve.ShardedServer[K]
}

// RebalanceOptions tunes the online shard-rebalancing detector
// (ShardedServer.StartRebalancer, ShardedServer.CheckRebalance): the
// hot/cold share thresholds, the window's minimum update volume, the
// shard-count bounds, and the poll interval.
type RebalanceOptions = serve.RebalanceOptions

// RebalanceStats reports a ShardedServer's rebalancing state: the
// registry epoch, split-key table generation, current shard count, and
// the split/merge decision counters.
type RebalanceStats = serve.RebalanceStats

// NewShardedServer reshards t's pairs across `shards` trees (zero or
// negative selects GOMAXPROCS) on t's simulated device. t itself is
// left intact; close it once the sharded server is serving.
func NewShardedServer[K Key](t *Tree[K], shards int) (*ShardedServer[K], error) {
	s, err := serve.NewShardedServer(t.Tree, shards)
	if err != nil {
		return nil, err
	}
	return &ShardedServer[K]{s}, nil
}

// Sharded is shorthand for NewShardedServer(t, shards).
func (t *Tree[K]) Sharded(shards int) (*ShardedServer[K], error) {
	return NewShardedServer(t, shards)
}

// ShardedCoalescer routes coalesced point lookups to per-shard
// coalescers, so batches form against the tree that will search them.
type ShardedCoalescer[K Key] struct {
	*serve.ShardedCoalescer[K]
}

// Coalesce starts one coalescer per shard over the sharded server.
func (s *ShardedServer[K]) Coalesce(opt CoalescerOptions) *ShardedCoalescer[K] {
	return &ShardedCoalescer[K]{s.ShardedServer.Coalesce(opt)}
}

// DurableOptions configures OpenDurable: the data directory, the WAL
// group-commit window, the background snapshot period, and the WAL
// partition count fixed at first boot.
type DurableOptions = serve.DurableOptions

// RecoveryStats reports what a Durable's recovery did at open: the
// snapshot epoch it bulk-loaded, the shard layout it restored, and the
// WAL tail it replayed past the snapshot floor.
type RecoveryStats = serve.RecoveryStats

// PersistMetrics is a snapshot of a Durable's WAL and snapshot counters.
type PersistMetrics = serve.PersistMetrics

// Durable fronts a Server or ShardedServer with write-ahead logging and
// epoch-aligned snapshots (DESIGN §8): every update batch is logged and
// group-commit fsynced BEFORE it is applied and acked, snapshots pin one
// registry epoch across every shard and truncate the log below the
// covered floor, and recovery bulk-loads the snapshot images bottom-up
// and replays only the WAL tail. Reads go straight to the wrapped
// server; writes MUST go through the Durable to survive a crash.
type Durable[K Key] struct {
	*serve.Durable[K]
}

// OpenDurable opens (or creates) the durable serving stack in dopt.Dir.
// A directory holding a committed snapshot is recovered — shard trees
// bulk-loaded from images, layout restored from the manifest (shards is
// ignored), WAL tails replayed; otherwise seed() provides the initial
// sorted pairs and an initial snapshot is committed. Close the Durable
// first, then the wrapped server.
func OpenDurable[K Key](dopt DurableOptions, opt Options, shards int, seed func() ([]Pair[K], error)) (*Durable[K], error) {
	d, err := serve.OpenDurable(dopt, opt, shards, seed)
	if err != nil {
		return nil, err
	}
	return &Durable[K]{d}, nil
}

// Server returns the wrapped single-tree server (nil in sharded mode).
func (d *Durable[K]) Server() *Server[K] {
	if s := d.Durable.Server(); s != nil {
		return &Server[K]{s}
	}
	return nil
}

// Sharded returns the wrapped sharded server (nil in single mode).
func (d *Durable[K]) Sharded() *ShardedServer[K] {
	if s := d.Durable.Sharded(); s != nil {
		return &ShardedServer[K]{s}
	}
	return nil
}
