package hbtree

import (
	"hbtree/internal/serve"
)

// This file is the facade over internal/serve: the concurrency layer
// that makes a Tree safe to share between goroutines. A bare Tree
// follows the package's single-writer contract (see the package
// documentation); NewServer publishes it behind an atomic snapshot
// pointer (readers never block on batch updates or rebuilds), and a
// Coalescer batches concurrent point lookups into the bucket-sized
// LookupBatch calls the heterogeneous search path is built for.

// ErrServerClosed is returned by a Coalescer for requests it can no
// longer serve after Close.
var ErrServerClosed = serve.ErrClosed

// CoalescerOptions configures Server.Coalesce: the size-or-deadline
// flush window and the shard count across which submissions spread.
type CoalescerOptions = serve.Options

// ServerMetrics is a snapshot of a Server's serving counters, including
// the accumulated virtual serving time that makes per-request and
// coalesced serving comparable on the paper's calibrated clock.
type ServerMetrics = serve.Metrics

// Server makes a Tree safe for concurrent use: read operations (point,
// range and batch lookups, scans, stats) run concurrently against the
// current snapshot; Update and Rebuild construct a successor version
// aside and atomically publish it, so readers are never blocked for the
// duration of a batch write.
type Server[K Key] struct {
	*serve.Server[K]
}

// NewServer wraps t behind the snapshot-read contract. The tree must
// not be used directly while the server is serving.
func NewServer[K Key](t *Tree[K]) *Server[K] {
	return &Server[K]{serve.NewServer(t.Tree)}
}

// NewLockedServer wraps t behind the original sync.RWMutex contract,
// where Update and Rebuild exclude all readers for the duration of the
// batch. It is the A/B baseline for the snapshot mode and suits
// deployments that cannot spare a second I-segment replica during
// updates.
func NewLockedServer[K Key](t *Tree[K]) *Server[K] {
	return &Server[K]{serve.NewLockedServer(t.Tree)}
}

// Coalescer batches concurrent point lookups into LookupBatch calls
// under a size-or-deadline window. Obtain one with Server.Coalesce or
// Tree.Coalesced, and Close it to release its flusher goroutine.
type Coalescer[K Key] struct {
	*serve.Coalescer[K]
}

// Coalesce starts a request coalescer over the server.
func (s *Server[K]) Coalesce(opt CoalescerOptions) *Coalescer[K] {
	return &Coalescer[K]{serve.NewCoalescer(s.Server, opt)}
}

// Coalesced wraps the tree in a Server and a default-configured
// Coalescer (batch = the tree's bucket size, 100µs window): the
// one-call path to concurrency-safe, batch-amortised serving. The
// caller must Close the coalescer when done; closing the server also
// closes the tree.
func (t *Tree[K]) Coalesced() (*Server[K], *Coalescer[K]) {
	s := NewServer(t)
	return s, s.Coalesce(CoalescerOptions{})
}
