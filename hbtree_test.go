package hbtree_test

import (
	"sort"
	"strings"
	"testing"

	"hbtree"
)

func TestPublicAPIQuickstart(t *testing.T) {
	pairs := hbtree.GeneratePairs[uint64](1<<16, 42)
	if !sort.SliceIsSorted(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key }) {
		t.Fatal("GeneratePairs not sorted")
	}
	tree, err := hbtree.New(pairs, hbtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	qs := hbtree.ShuffledQueries(pairs, 1<<15, 7)
	vals, found, stats, err := tree.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if !found[i] || vals[i] != hbtree.ValueFor(q) {
			t.Fatalf("lookup %d failed", i)
		}
	}
	if stats.ThroughputQPS <= 0 {
		t.Fatal("no throughput reported")
	}
}

func TestPublicAPIVariantsAndWidths(t *testing.T) {
	p64 := hbtree.GeneratePairs[uint64](1<<14, 1)
	p32 := hbtree.GeneratePairs[uint32](1<<14, 2)
	for _, v := range []hbtree.Variant{hbtree.Implicit, hbtree.Regular} {
		t64, err := hbtree.New(p64, hbtree.Options{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := t64.Lookup(p64[0].Key); !ok || got != p64[0].Value {
			t.Fatalf("%v 64-bit lookup failed", v)
		}
		t64.Close()
		t32, err := hbtree.New(p32, hbtree.Options{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := t32.Lookup(p32[0].Key); !ok || got != p32[0].Value {
			t.Fatalf("%v 32-bit lookup failed", v)
		}
		t32.Close()
	}
}

func TestPublicAPIUpdate(t *testing.T) {
	pairs := hbtree.GeneratePairs[uint64](1<<14, 3)
	tree, err := hbtree.New(pairs, hbtree.Options{Variant: hbtree.Regular, LeafFill: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	ops := []hbtree.Op[uint64]{
		{Key: 424242, Value: 7},
		{Key: pairs[5].Key, Delete: true},
	}
	st, err := tree.Update(ops, hbtree.Synchronized)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 2 {
		t.Fatalf("applied %d", st.Applied)
	}
	if v, ok := tree.Lookup(424242); !ok || v != 7 {
		t.Fatal("inserted key missing")
	}
	if _, ok := tree.Lookup(pairs[5].Key); ok {
		t.Fatal("deleted key still present")
	}
	if err := tree.VerifyReplica(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIMachines(t *testing.T) {
	m1, m2 := hbtree.MachineM1(), hbtree.MachineM2()
	if m1.Name != "M1" || m2.Name != "M2" {
		t.Fatal("machine names wrong")
	}
	if m1.GPU.MemBWBytes <= m2.GPU.MemBWBytes {
		t.Fatal("M1's GPU should have more bandwidth")
	}
	pairs := hbtree.GeneratePairs[uint64](1<<14, 4)
	tree, err := hbtree.New(pairs, hbtree.Options{Machine: m2, LoadBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	b := tree.Discover()
	if b.R < 0 || b.R > 1 {
		t.Fatalf("bad balance %+v", b)
	}
}

func TestNewFromUnsorted(t *testing.T) {
	pairs := []hbtree.Pair[uint64]{
		{Key: 30, Value: 3}, {Key: 10, Value: 1}, {Key: 20, Value: 2},
		{Key: 10, Value: 11}, // duplicate: last write wins
	}
	tree, err := hbtree.NewFromUnsorted(pairs, hbtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if tree.NumPairs() != 3 {
		t.Fatalf("NumPairs = %d", tree.NumPairs())
	}
	if v, ok := tree.Lookup(10); !ok || v != 11 {
		t.Fatalf("duplicate resolution wrong: (%d,%v)", v, ok)
	}
	if v, ok := tree.Lookup(30); !ok || v != 3 {
		t.Fatalf("Lookup(30) = (%d,%v)", v, ok)
	}
}

func TestDescribeAndCursor(t *testing.T) {
	pairs := hbtree.GeneratePairs[uint64](1<<12, 3)
	tree, err := hbtree.New(pairs, hbtree.Options{Variant: hbtree.Regular})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	desc := tree.Describe()
	for _, want := range []string{"HB+-tree", "regular", "I-segment", "L-segment", "M1"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("Describe missing %q:\n%s", want, desc)
		}
	}
	// Cursor over the public API.
	cur := tree.Seek(pairs[100].Key)
	for i := 0; i < 50; i++ {
		p, ok := cur.Next()
		if !ok || p != pairs[100+i] {
			t.Fatalf("cursor at %d = (%+v,%v)", i, p, ok)
		}
	}
}

func TestLatencyPercentiles(t *testing.T) {
	pairs := hbtree.GeneratePairs[uint64](1<<18, 5)
	tree, err := hbtree.New(pairs, hbtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	qs := hbtree.ShuffledQueries(pairs, 1<<18, 7) // 16 buckets
	_, _, stats, err := tree.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LatencyP50 <= 0 || stats.LatencyP99 < stats.LatencyP95 || stats.LatencyP95 < stats.LatencyP50 {
		t.Fatalf("percentiles inconsistent: %+v", stats)
	}
}
