// Wall-clock acceptance gate for the gapped-delta write path (DESIGN
// §10): under a sustained 30% update mix, the in-place batch-apply
// path must not apply fewer updates per second than the clone-only
// baseline it replaces. Both arms run with the identical gapped
// layout (LeafFill 0.875 is defaulted by RunWall whenever UpdateFrac
// is set), so the comparison isolates the apply path — shared-pool
// forks that land batches in leaf gaps versus clone-and-swap of the
// whole pool on every flush. The clone arm re-copies every leaf byte
// per batch; the delta arm copies only per-leaf metadata until gaps
// fill and a compaction clone runs, so on any host with a spare core
// for the pump the delta arm's update throughput is a superset of the
// baseline's. Below 4 CPUs the pump and the clients contend for the
// same core and the comparison drowns in scheduling noise, so the
// gate skips there; the byte-identical A/B oracles in
// internal/serve and internal/cpubtree still run everywhere.
package hbtree_test

import (
	"runtime"
	"testing"
	"time"

	"hbtree"
	"hbtree/internal/serve"
)

func TestWallDeltaLeavesBeatCloneOnlyUpdates(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs ≥4 CPUs for a stable update-throughput comparison, have %d", runtime.GOMAXPROCS(0))
	}
	pairs := hbtree.GeneratePairs[uint64](1<<18, 42)
	opt := serve.WallOptions{
		Clients:     8,
		Duration:    time.Second,
		UpdateFrac:  0.3,
		UpdateBatch: 4096,
	}
	cloneOpt := opt
	cloneOpt.NoDeltaLeaves = true
	clone, err := serve.RunWall(pairs, hbtree.Options{Variant: hbtree.Regular}, cloneOpt)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := serve.RunWall(pairs, hbtree.Options{Variant: hbtree.Regular}, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clone-only: %s", clone)
	t.Logf("delta:      %s", delta)

	// The metrics must prove the two arms took different apply paths.
	if delta.InPlaceBatches == 0 {
		t.Errorf("delta arm applied no batch in place: %+v", delta)
	}
	if clone.InPlaceBatches != 0 || clone.CloneFallbacks != 0 {
		t.Errorf("clone-only arm took the delta path: %+v", clone)
	}
	if clone.ClonedBytes == 0 {
		t.Errorf("clone-only arm recorded no clone footprint: %+v", clone)
	}
	// Amplification: in-place applies must shed most of the per-batch
	// byte copying the clone-only baseline pays.
	if delta.ClonedBytes >= clone.ClonedBytes {
		t.Errorf("delta arm cloned as much as the baseline: %d vs %d bytes",
			delta.ClonedBytes, clone.ClonedBytes)
	}
	if clone.Updates < 4096 || delta.Updates < 4096 {
		t.Skipf("host too slow for a meaningful sample (clone %d, delta %d updates)",
			clone.Updates, delta.Updates)
	}
	// The wall-clock gate: sustained update throughput must not regress.
	if delta.UpdateMQPS < clone.UpdateMQPS {
		t.Errorf("delta leaves %.3f update MQPS below clone-only baseline %.3f",
			delta.UpdateMQPS, clone.UpdateMQPS)
	}
}
