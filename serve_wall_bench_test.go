// Wall-clock benchmarks for the serving layer. Unlike serve_bench_test.go,
// which compares serving disciplines on the paper's virtual clock, this
// suite measures real throughput and latency on the host: pipelined
// clients drive the coalescer while an update pump applies batched
// writes, in the three configurations serve.RunWall supports — the
// locked baseline (PR-1 discipline: one RWMutex, one coalescer queue),
// the fast path (snapshot reads, sharded coalescer, allocation-free
// batches) and the key-space sharded server (T independent trees, each
// with its own snapshot pointer and update pump).
//
// Two effects are measured. Batching amortisation shows up in MQPS at
// any core count. Reader-stall elimination shows up in the during-write
// latency distribution: a locked server blocks every lookup for the
// remainder of the write span (a rebuild blocks them for up to its full
// duration), while a snapshot server keeps serving the old version, so
// its during-write p50 stays at the at-rest p50. The throughput side of
// the comparison only scales with cores — on a single-CPU host the
// snapshot clone has no spare core to hide in — so the multiplicative
// MQPS gate runs on ≥4-core hosts and the stall gate runs everywhere.
package hbtree_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"hbtree"
	"hbtree/internal/serve"
)

// wallPairs is sized so a rebuild is long enough (~20ms) for lookups to
// overlap it, making the during-write distribution a meaningful sample.
const wallPairs = 1 << 20

// TestWallSnapshotReadsDontStallOnRebuilds is the reader-stall
// acceptance criterion: while the tree is being rebuilt, a snapshot
// server must keep serving lookups at their at-rest latency, where the
// locked baseline makes them queue behind the writer. It holds at any
// core count because it compares latency distributions, not throughput.
func TestWallSnapshotReadsDontStallOnRebuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	pairs := hbtree.GeneratePairs[uint64](wallPairs, 42)
	opt := serve.WallOptions{
		Clients:      8,
		Duration:     600 * time.Millisecond,
		RebuildEvery: 100 * time.Millisecond,
		Depth:        64,
	}

	lockedOpt := opt
	lockedOpt.Locked = true
	locked, err := serve.RunWall(pairs, hbtree.Options{}, lockedOpt)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := serve.RunWall(pairs, hbtree.Options{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("locked: %s", locked)
	t.Logf("fast:   %s", fast)

	if locked.WriteTime < 20*time.Millisecond || fast.WriteTime < 20*time.Millisecond {
		t.Skipf("rebuilds too short to measure (locked %v, fast %v of writes)", locked.WriteTime, fast.WriteTime)
	}
	if locked.DuringWriteSamples < 100 || fast.DuringWriteSamples < 100 {
		t.Skipf("too few during-write samples (locked %d, fast %d)", locked.DuringWriteSamples, fast.DuringWriteSamples)
	}
	// Reads issued during a rebuild: the locked server stalls them
	// behind the writer; the snapshot server serves them at its at-rest
	// median.
	if fast.DuringWriteP50 >= locked.DuringWriteP50 {
		t.Errorf("during-rebuild p50 did not improve: locked %v, fast %v",
			locked.DuringWriteP50, fast.DuringWriteP50)
	}
	// And far more reads complete inside write spans at all: a locked
	// server admits almost none (clients stall before they can submit).
	if fast.DuringWriteSamples <= locked.DuringWriteSamples {
		t.Errorf("during-rebuild service did not improve: locked %d samples, fast %d",
			locked.DuringWriteSamples, fast.DuringWriteSamples)
	}
	// The snapshot machinery must not cost meaningful read throughput.
	if fast.MQPS < 0.7*locked.MQPS {
		t.Errorf("fast path lost read throughput: locked %.2f MQPS, fast %.2f MQPS", locked.MQPS, fast.MQPS)
	}
}

// TestWallFastPathScalesWithClients is the throughput acceptance
// criterion on multicore hosts: at 8 concurrent clients with a 10%
// update mix, the sharded+snapshot path must beat the PR-1 mutex path
// by ≥1.5× MQPS. The parallelism it measures does not exist on smaller
// hosts (a snapshot clone and a batch apply contend for the same core
// that serves lookups), so the test skips below 4 CPUs — there the
// reader-stall criterion above still runs.
func TestWallFastPathScalesWithClients(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs ≥4 CPUs to measure parallel scaling, have %d", runtime.GOMAXPROCS(0))
	}
	pairs := hbtree.GeneratePairs[uint64](1<<18, 42)
	opt := serve.WallOptions{
		Clients:     8,
		Duration:    time.Second,
		UpdateFrac:  0.1,
		UpdateBatch: 16384,
	}
	lockedOpt := opt
	lockedOpt.Locked = true
	locked, err := serve.RunWall(pairs, hbtree.Options{Variant: hbtree.Regular}, lockedOpt)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := serve.RunWall(pairs, hbtree.Options{Variant: hbtree.Regular}, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("locked: %s", locked)
	t.Logf("fast:   %s", fast)
	if fast.MQPS < 1.5*locked.MQPS {
		t.Errorf("fast path %.2f MQPS < 1.5× locked %.2f MQPS at 8 clients, 10%% updates", fast.MQPS, locked.MQPS)
	}
}

// BenchmarkWallServe reports wall-clock serving metrics across client
// counts and update mixes for both configurations. Each benchmark
// invocation is a single RunWall whose duration scales with b.N (25ms
// per iteration), so the tree is built once per measurement.
func BenchmarkWallServe(b *testing.B) {
	pairs := hbtree.GeneratePairs[uint64](1<<18, 42)
	for _, cfg := range []struct {
		name   string
		locked bool
		shards int
	}{{"locked", true, 0}, {"fast", false, 0}, {"sharded", false, 4}} {
		for _, clients := range []int{1, 8} {
			for _, frac := range []float64{0, 0.1} {
				name := fmt.Sprintf("%s/clients=%d/updates=%d%%", cfg.name, clients, int(frac*100))
				b.Run(name, func(b *testing.B) {
					treeOpt := hbtree.Options{}
					if frac > 0 {
						treeOpt.Variant = hbtree.Regular
					}
					res, err := serve.RunWall(pairs, treeOpt, serve.WallOptions{
						Clients:    clients,
						Duration:   time.Duration(b.N) * 25 * time.Millisecond,
						UpdateFrac: frac,
						Locked:     cfg.locked,
						Shards:     cfg.shards,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.MQPS, "MQPS")
					b.ReportMetric(float64(res.P50.Microseconds()), "p50-µs")
					b.ReportMetric(float64(res.P99.Microseconds()), "p99-µs")
					if res.DuringWriteSamples > 0 {
						b.ReportMetric(float64(res.DuringWriteP50.Microseconds()), "write-p50-µs")
					}
				})
			}
		}
	}
}

// TestWallSortedDescentBeatsUnsortedAtLargeWindows is the shared-descent
// acceptance criterion on multicore hosts: at a coalesce window of 256,
// the default sorted flush (presort + duplicate fold + level-wise probe
// sharing + double-buffered transfer overlap) must not serve fewer
// queries per second than the plain unsorted flush of the same
// pipeline. The win comes from folding duplicate keys before the
// backend sees them and from same-child runs sharing inner-node probes,
// both of which only pay off when windows are large enough to contain
// runs — which is why the gate pins MaxBatch at 256 and why small
// windows are only bounded, not gated (see DESIGN §9). Below 4 CPUs the
// comparison drowns in scheduling noise, so the test skips there; the
// byte-identical correctness oracles still run everywhere.
func TestWallSortedDescentBeatsUnsortedAtLargeWindows(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs ≥4 CPUs for a stable throughput comparison, have %d", runtime.GOMAXPROCS(0))
	}
	pairs := hbtree.GeneratePairs[uint64](1<<18, 42)
	opt := serve.WallOptions{
		Clients:  8,
		Duration: time.Second,
		MaxBatch: 256,
	}
	unsortedOpt := opt
	unsortedOpt.Unsorted = true
	unsorted, err := serve.RunWall(pairs, hbtree.Options{}, unsortedOpt)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := serve.RunWall(pairs, hbtree.Options{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("unsorted: %s", unsorted)
	t.Logf("sorted:   %s", sorted)

	if sorted.NodeProbes <= 0 || sorted.ProbesSaved <= 0 {
		t.Errorf("sorted run recorded no probe sharing: probes=%d saved=%d",
			sorted.NodeProbes, sorted.ProbesSaved)
	}
	if unsorted.NodeProbes != 0 {
		t.Errorf("unsorted baseline took the sorted path: probes=%d", unsorted.NodeProbes)
	}
	if sorted.MQPS < unsorted.MQPS {
		t.Errorf("sorted shared descent %.2f MQPS below unsorted baseline %.2f MQPS at window 256",
			sorted.MQPS, unsorted.MQPS)
	}
}

// TestWallShardedUpdateThroughputScales is the sharding acceptance
// criterion on multicore hosts: under an update-heavy mix, the T=4
// key-space sharded server must apply ≥2× the update operations per
// second of the single-tree snapshot path — each sharded write clones
// 1/4 of the data and the four pumps run concurrently, where the
// single-tree path clones everything behind one writer mutex — while
// its during-write read p50 stays no worse. Like the ≥1.5× read gate
// above, the parallelism does not exist below 4 CPUs, so the test
// skips there (the sharded correctness oracles still run everywhere).
func TestWallShardedUpdateThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs ≥4 CPUs to measure parallel scaling, have %d", runtime.GOMAXPROCS(0))
	}
	pairs := hbtree.GeneratePairs[uint64](1<<18, 42)
	opt := serve.WallOptions{
		Clients:     8,
		Duration:    time.Second,
		UpdateFrac:  0.5,
		UpdateBatch: 8192,
	}
	fast, err := serve.RunWall(pairs, hbtree.Options{Variant: hbtree.Regular}, opt)
	if err != nil {
		t.Fatal(err)
	}
	shardedOpt := opt
	shardedOpt.Shards = 4
	sharded, err := serve.RunWall(pairs, hbtree.Options{Variant: hbtree.Regular}, shardedOpt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fast:    %s", fast)
	t.Logf("sharded: %s", sharded)

	fastUps := float64(fast.Updates) / fast.Elapsed.Seconds()
	shardedUps := float64(sharded.Updates) / sharded.Elapsed.Seconds()
	if shardedUps < 2*fastUps {
		t.Errorf("sharded update throughput %.0f ops/s < 2× single-tree snapshot %.0f ops/s",
			shardedUps, fastUps)
	}
	// Reads issued while a write was in flight must not get slower than
	// the single-tree snapshot path (small margin for run-to-run noise).
	if fast.DuringWriteSamples >= 100 && sharded.DuringWriteSamples >= 100 &&
		sharded.DuringWriteP50 > fast.DuringWriteP50+fast.DuringWriteP50/2 {
		t.Errorf("sharded during-write p50 %v worse than single-tree snapshot %v",
			sharded.DuringWriteP50, fast.DuringWriteP50)
	}
}

// TestWallSkewedRebalanceSmoke drives the full serving pipeline — the
// pipelined clients, the sharded coalescer, the per-shard update pumps
// AND the background rebalancer — with a 90%-skewed update stream, and
// checks the run stays correct while the shard layout is retiled under
// live wall-clock load: the driver finishes without error, the skew
// triggers at least one online split, and the final layout/epoch
// counters are coherent. Throughput is reported, not gated.
func TestWallSkewedRebalanceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	pairs := hbtree.GeneratePairs[uint64](1<<16, 42)
	res, err := serve.RunWall(pairs, hbtree.Options{Variant: hbtree.Regular}, serve.WallOptions{
		Clients:     4,
		Duration:    700 * time.Millisecond,
		UpdateFrac:  0.5,
		UpdateSkew:  0.9,
		UpdateBatch: 512,
		Shards:      4,
		Rebalance: &serve.RebalanceOptions{
			MinOps:       256,
			HotFraction:  0.5,
			ColdFraction: -1, // splits only: keep the outcome monotone
			Interval:     time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("skewed+rebalance: %s", res)
	if res.Updates < 2048 {
		t.Skipf("host too slow to accumulate a detector window (%d updates)", res.Updates)
	}
	if res.Splits < 1 {
		t.Errorf("90%%-skewed stream triggered no online split: %+v", res)
	}
	if res.Merges != 0 || res.Rebalances != res.Splits {
		t.Errorf("split-only run has incoherent counters: %+v", res)
	}
	if res.Shards != 4+int(res.Splits) {
		t.Errorf("final shard count %d does not reflect %d splits of 4", res.Shards, res.Splits)
	}
	if res.Epoch < uint64(res.Rebalances) {
		t.Errorf("epoch %d below rebalance count %d", res.Epoch, res.Rebalances)
	}
}
