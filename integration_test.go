package hbtree_test

import (
	"bytes"
	"sort"
	"testing"

	"hbtree"
	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/csstree"
	"hbtree/internal/fast"
	"hbtree/internal/hybrid"
	"hbtree/internal/workload"
)

// Integration tests: cross-module scenarios exercising the whole stack —
// dataset generation, tree construction, hybrid search on the GPU
// simulator, batch updates with replica maintenance, persistence, and
// the baselines — all audited against a map oracle.

// TestLifecycleRegular drives a full index lifecycle: build, serve
// queries, run every update method, persist, reload, serve again.
func TestLifecycleRegular(t *testing.T) {
	const n = 50000
	pairs := hbtree.GeneratePairs[uint64](n, 42)
	oracle := make(map[uint64]uint64, n)
	for _, p := range pairs {
		oracle[p.Key] = p.Value
	}
	tree, err := hbtree.New(pairs, hbtree.Options{Variant: hbtree.Regular, LeafFill: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	methods := []hbtree.UpdateMethod{
		hbtree.Synchronized, hbtree.AsyncParallel, hbtree.AsyncSingle, hbtree.SynchronizedMT,
	}
	for round, method := range methods {
		// Serve a query wave.
		qs := hbtree.ShuffledQueries(pairs, 1<<15, uint64(round))
		vals, fnd, _, err := tree.LookupBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			wv, wok := oracle[q]
			if fnd[i] != wok || (wok && vals[i] != wv) {
				t.Fatalf("round %d: query %d diverges from oracle", round, i)
			}
		}
		// Apply an update batch.
		wl := workload.UpdateBatch(pairs, 4000, 0.3, uint64(100+round))
		ops := make([]hbtree.Op[uint64], len(wl))
		for i, op := range wl {
			ops[i] = hbtree.Op[uint64]{Key: op.Pair.Key, Value: op.Pair.Value, Delete: op.Delete}
			if op.Delete {
				delete(oracle, op.Pair.Key)
			} else {
				oracle[op.Pair.Key] = op.Pair.Value
			}
		}
		if _, err := tree.Update(ops, method); err != nil {
			t.Fatalf("round %d (%v): %v", round, method, err)
		}
		if err := tree.VerifyReplica(); err != nil {
			t.Fatalf("round %d (%v): %v", round, method, err)
		}
	}

	// GPU-assisted round.
	wl := workload.UpdateBatch(pairs, 4000, 0.3, 999)
	ops := make([]hbtree.Op[uint64], len(wl))
	for i, op := range wl {
		ops[i] = hbtree.Op[uint64]{Key: op.Pair.Key, Value: op.Pair.Value, Delete: op.Delete}
		if op.Delete {
			delete(oracle, op.Pair.Key)
		} else {
			oracle[op.Pair.Key] = op.Pair.Value
		}
	}
	if _, err := tree.UpdateGPUAssisted(ops); err != nil {
		t.Fatal(err)
	}

	// Persist, reload, audit everything.
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := hbtree.Load[uint64](&buf, hbtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.NumPairs() != len(oracle) {
		t.Fatalf("loaded pairs %d != oracle %d", loaded.NumPairs(), len(oracle))
	}
	audit := make([]uint64, 0, len(oracle))
	for k := range oracle {
		audit = append(audit, k)
	}
	sort.Slice(audit, func(i, j int) bool { return audit[i] < audit[j] })
	vals, fnd, _, err := loaded.LookupBatch(audit)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range audit {
		if !fnd[i] || vals[i] != oracle[k] {
			t.Fatalf("post-reload audit failed for key %d", k)
		}
	}
}

// TestAllIndexesAgree cross-checks every index structure in the
// repository on one dataset: CPU implicit/regular, FAST, CSS, the HB+
// variants, and the generic hybrid engine must all return identical
// results for identical queries.
func TestAllIndexesAgree(t *testing.T) {
	const n = 30000
	pairs := hbtree.GeneratePairs[uint64](n, 7)
	qs := make([]uint64, 0, 8000)
	r := workload.NewRNG(5)
	for i := 0; i < 4000; i++ {
		qs = append(qs, pairs[r.Intn(n)].Key) // hits
		miss := r.Uint64()
		if miss == ^uint64(0) {
			miss--
		}
		qs = append(qs, miss) // very likely misses
	}

	type result struct {
		vals []uint64
		fnd  []bool
	}
	results := map[string]result{}

	// CPU implicit.
	impl, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v1 := make([]uint64, len(qs))
	f1 := make([]bool, len(qs))
	impl.LookupBatch(qs, v1, f1)
	results["cpu-implicit"] = result{v1, f1}

	// CPU regular.
	reg, err := cpubtree.BuildRegular(pairs, cpubtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v2 := make([]uint64, len(qs))
	f2 := make([]bool, len(qs))
	reg.LookupBatch(qs, v2, f2)
	results["cpu-regular"] = result{v2, f2}

	// FAST.
	ft, err := fast.Build(pairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	v3 := make([]uint64, len(qs))
	f3 := make([]bool, len(qs))
	ft.LookupBatch(qs, v3, f3)
	results["fast"] = result{v3, f3}

	// CSS.
	ct, err := csstree.Build(pairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	v4 := make([]uint64, len(qs))
	f4 := make([]bool, len(qs))
	for i, q := range qs {
		v4[i], f4[i] = ct.Lookup(q)
	}
	results["css"] = result{v4, f4}

	// HB+ implicit and regular (hybrid path).
	for _, variant := range []core.Variant{core.Implicit, core.Regular} {
		hb, err := core.Build(pairs, core.Options{Variant: variant})
		if err != nil {
			t.Fatal(err)
		}
		v, f, _, err := hb.LookupBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		results["hb-"+variant.String()] = result{v, f}
		hb.Close()
	}

	// Generic hybrid engine over CSS.
	eng, err := hybrid.NewEngine[uint64](hybrid.WrapCSS(ct), hybrid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v5, f5, _, err := eng.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	results["hybrid-css"] = result{v5, f5}

	ref := results["cpu-implicit"]
	for name, res := range results {
		for i := range qs {
			if res.fnd[i] != ref.fnd[i] || (res.fnd[i] && res.vals[i] != ref.vals[i]) {
				t.Fatalf("%s diverges from cpu-implicit at query %d (key %d)", name, i, qs[i])
			}
		}
	}
}

// TestRangeAgreement cross-checks range queries between the implicit and
// regular HB+ variants across selectivities.
func TestRangeAgreement(t *testing.T) {
	pairs := hbtree.GeneratePairs[uint64](20000, 9)
	ti, err := hbtree.New(pairs, hbtree.Options{Variant: hbtree.Implicit})
	if err != nil {
		t.Fatal(err)
	}
	defer ti.Close()
	tr, err := hbtree.New(pairs, hbtree.Options{Variant: hbtree.Regular})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for _, count := range []int{1, 7, 32, 100} {
		rqs := workload.RangeQueries(pairs, 200, count, uint64(count))
		for _, rq := range rqs {
			a := ti.RangeQuery(rq.Start, rq.Count, nil)
			b := tr.RangeQuery(rq.Start, rq.Count, nil)
			if len(a) != len(b) {
				t.Fatalf("count %d: lengths %d vs %d", count, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("count %d: diverges at %d", count, i)
				}
			}
		}
	}
}

// TestRebuildCycleImplicit stress-tests the implicit variant's only
// update path — repeated full rebuilds — keeping the replica exact.
func TestRebuildCycleImplicit(t *testing.T) {
	pairs := hbtree.GeneratePairs[uint64](20000, 3)
	tree, err := hbtree.New(pairs, hbtree.Options{Variant: hbtree.Implicit})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	for round := 1; round <= 4; round++ {
		pairs = hbtree.GeneratePairs[uint64](20000+round*5000, uint64(round))
		st, err := tree.Rebuild(pairs)
		if err != nil {
			t.Fatal(err)
		}
		if st.SyncTime <= 0 {
			t.Fatal("no I-segment transfer charged")
		}
		if err := tree.VerifyReplica(); err != nil {
			t.Fatal(err)
		}
		qs := hbtree.ShuffledQueries(pairs, 1<<14, uint64(round))
		vals, fnd, _, err := tree.LookupBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			if !fnd[i] || vals[i] != hbtree.ValueFor(q) {
				t.Fatalf("round %d: lookup %d failed", round, i)
			}
		}
	}
}
